"""REPRO_FAST_MODE: the batched-orchestration TSE replay plane.

``FastTemporalStreamingSystem`` is a second, deliberately *non-bit-identical*
implementation of the Temporal Streaming Engine over the same packed
CMOB/FIFO layout as :mod:`repro.tse.engine`.  The paper's trace-driven
results are statistical aggregates (coverage, discards, traffic ratios,
stream-length distributions), so this plane trades per-event exactness for
throughput and is validated against per-metric tolerance bands instead
(``benchmarks/validate_fast_mode.py``; coverage within ±0.02 absolute,
traffic within ±5% relative — locked by ``tests/test_fast_mode.py``).

What is batched or hoisted relative to the exact plane:

* **Fused fetch + delivery** (:meth:`_pump`): the agreed window of a stream
  queue is popped, SVB-filtered and installed into the SVB in one pass —
  no ``FetchBatch`` plumbing, no per-event batch lists, no separate
  ``deliver_all`` walk, no per-entry fill-time bookkeeping.  SVB entries are
  ``(queue, queue_id)`` pairs built once per pump, so hit crediting is one
  identity check instead of a queue-table lookup.
* **Deep windows + refill-on-empty**: candidate streams are read
  ``queue_depth * REPRO_FAST_REFILL_FACTOR`` addresses at a time and a FIFO
  is refilled (inline, inside the pump) only when it runs dry — replacing
  the exact plane's half-empty threshold, refill-dirty set and per-event
  refill service with ~4-8x fewer, larger CMOB window reads.  Streams are
  *continued* (monotonic source offsets), so realized stream lengths are
  preserved rather than truncated.  Traffic-accounting runs fall back to
  ``queue_depth`` windows: the modelled address-stream volume then matches
  the exact plane's refill cadence within the declared band.
* **Slot-table queues**: per-node queues live in a flat list bounded by
  ``stream_queues`` whose :class:`~repro.tse.stream_queue.StreamQueue`
  objects are reused in place forever — no queue-id dict, no scan-set or
  zombie pruning, no per-allocation mapping churn.
* **Bounded realignment probes**: the off-chip-miss scan probes only the
  lookahead window of each active FIFO (``bytes.find`` with bounds) instead
  of the whole packed buffer.

What is *not* approximated: stream location through directory CMOB
pointers, LRU queue reclamation and stall resolution, the SVB's capacity /
LRU / invalidate-on-write semantics, CMOB recording of consumptions and
hits, and the system-wide residency gate for writes — these drive coverage
and discards, the quantities the validation bands guard.

The exact plane is untouched and remains the default; per-access outcome
recording (the timing model's input) intentionally requires it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.coherence.directory import Directory, DirectoryEntry
from repro.coherence.messages import CoherenceMessage, MessageType
from repro.common.config import TSEConfig, fast_refill_factor
from repro.common.types import BlockAddress, NodeId
from repro.tse.cmob import CMOB
from repro.tse.layout import SLOT_BYTEORDER, SLOT_BYTES, SLOT_SHIFT
from repro.tse.stream_engine import _lcp, _window_unpacker
from repro.tse.stream_queue import _COMPACT_THRESHOLD, StreamQueue

# Short aliases of the shared slot layout (repro.tse.layout; RL004).
_SLOT = SLOT_BYTES
_SHIFT = SLOT_SHIFT
_ORDER = SLOT_BYTEORDER
_MASK = SLOT_BYTES - 1

__all__ = ["FastTemporalStreamingSystem"]

#: What the fused event handlers return: blocks delivered into the SVB and
#: blocks discarded (evicted unconsumed) during the event.
Delivery = Tuple[int, int]


class FastTemporalStreamingSystem:
    """System-wide TSE with fused, batched event handling (fast mode).

    Mirrors the *observable aggregates* of
    :class:`repro.tse.engine.TemporalStreamingSystem` — delivered/discarded
    block counts, SVB residency, stream-length samples, drain leftovers —
    through a different, coarser event decomposition.  The replay loop
    (``TSESimulator._replay_chunk_fast``) is its only intended driver.
    """

    def __init__(
        self,
        num_nodes: int,
        config: TSEConfig,
        directory: Directory,
        message_sink: Optional[Callable[[CoherenceMessage], None]] = None,
        blocks_map: Optional[Dict] = None,
    ) -> None:
        if directory.cmob_pointers_per_block < config.compared_streams:
            directory.cmob_pointers_per_block = config.compared_streams
        self.num_nodes = num_nodes
        self.config = config
        self.directory = directory
        self._message_sink = message_sink
        #: Protocol block-state map, used only on the traffic path to name
        #: the streamed-data producer (the exact plane does the same lookup
        #: in ``deliver_all``).
        self._blocks_map = blocks_map if blocks_map is not None else {}
        self.cmobs = [
            CMOB(config.cmob_capacity, node_id=i, entry_bytes=config.cmob_entry_bytes)
            for i in range(num_nodes)
        ]
        #: Per-node SVB: address -> (owner queue object, queue id at fetch).
        #: Plain insertion-ordered dicts double as the LRU order, exactly as
        #: the exact plane's ``StreamedValueBuffer`` storage does.
        self._svbs: List[Dict[BlockAddress, Tuple[StreamQueue, int]]] = [
            {} for _ in range(num_nodes)
        ]
        #: Per-node queue slot tables (bounded by ``config.stream_queues``);
        #: slots are permanent — reclamation resets the object in place.
        self._slots: List[List[StreamQueue]] = [[] for _ in range(num_nodes)]
        #: Per-node activity clocks (LRU reclamation time base).
        self._clocks: List[int] = [0] * num_nodes
        #: Hit counts of reclaimed queues (stream-length census, Figure 13).
        self._retired: List[List[int]] = [[] for _ in range(num_nodes)]
        #: System-wide SVB residency counts (write-gate, shared layout with
        #: the exact plane so the replay loop's hoisted probe is identical).
        self._svb_residency: Dict[BlockAddress, int] = {}
        self._next_queue_id = 0
        self._svb_capacity = config.svb_entries
        self._lookahead = config.stream_lookahead
        self._max_queues = config.stream_queues
        self._compared = config.compared_streams
        #: True when the directory keeps exactly two CMOB pointers per block
        #: (the paper default) — enables the specialized pointer-push path.
        self._ptr_cap2 = directory.cmob_pointers_per_block == 2
        #: Realignment probe window (the lookahead), in packed bytes —
        #: mirrors ``StreamQueue.skip_address``'s search bound.
        self._probe_window8 = max(config.stream_lookahead, 1) << _SHIFT
        #: CMOB window depth per stream read: deep on the message-free path,
        #: the exact plane's ``queue_depth`` when traffic is accounted.
        if message_sink is None:
            self._depth = config.queue_depth * fast_refill_factor()
        else:
            self._depth = config.queue_depth
        #: Exact-plane refill threshold in packed bytes, used only by the
        #: traffic-accounting top-up pass (:meth:`_topup_refills`).
        self._refill_threshold8 = config.refill_threshold << _SHIFT
        #: Hit-side pump batching: a hit frees one lookahead credit, but the
        #: pump only runs once the full lookahead budget has accumulated, so
        #: the delivery machinery is set up once per ``lookahead`` hits and
        #: the SVB oscillates between drained and fully charged instead of
        #: pinned full — a banded approximation, not observable in coverage
        #: at the declared tolerances (measured: coverage unchanged to 4
        #: decimals on db2/apache, discard within the declared band).
        self._pump_threshold = max(1, config.stream_lookahead)
        # Activity counters (debug/profiling visibility; not on any key).
        self._n_cmob_appends = 0
        self._n_streams_forwarded = 0
        self._n_no_stream_found = 0
        self._n_svb_hits = 0
        self._n_svb_invalidations = 0
        self._n_refills_serviced = 0
        self._n_queue_reclaims = 0
        self._n_stalls_resolved = 0
        self._n_frontier_resumes = 0

    # ------------------------------------------------------------------ refills
    def _refill_one(self, node: NodeId, queue: StreamQueue, i: int) -> bool:
        """Refill FIFO ``i`` from its source CMOB; True when data arrived.

        Called only when the FIFO has run dry; the stream *continues* at the
        monotonic source offset, so a live source extends the realized
        stream instead of truncating it.  A source at its recording frontier
        returns nothing now but may produce more later — the next pump
        simply retries, mirroring the exact plane's standing eligibility.
        """
        src = queue._src_nodes[i]
        if src < 0:
            return False
        fifo = queue._fifo_data[i]
        pos = queue._fifo_pos
        if pos[i] > _COMPACT_THRESHOLD:
            del fifo[:pos[i]]
            pos[i] = 0
        nxt = queue._src_next[i]
        count = self.cmobs[src].extend_into(fifo, nxt, self._depth)
        sink = self._message_sink
        if sink is not None:
            sink(CoherenceMessage(MessageType.STREAM_REQUEST, node, src, 0))
            if count:
                sink(
                    CoherenceMessage(
                        MessageType.ADDRESS_STREAM, src, node, 0,
                        num_addresses=count,
                    )
                )
        if count:
            queue._src_next[i] = nxt + count
            self._n_refills_serviced += 1
            return True
        return False

    def _refill_empty(self, node: NodeId, queue: StreamQueue) -> bool:
        """Refill every followed FIFO that has run dry; True if any revived."""
        data = queue._fifo_data
        pos = queue._fifo_pos
        selected = queue._selected
        if selected is not None:
            indices: Tuple[int, ...] = (selected,)
        else:
            indices = tuple(range(len(data)))
        revived = False
        for i in indices:
            if pos[i] >= len(data[i]) and self._refill_one(node, queue, i):
                revived = True
        return revived

    def _topup_refills(self, node: NodeId, slots: List[StreamQueue]) -> None:
        """Traffic-mode refill cadence: top up every below-threshold FIFO.

        The message-free plane refills only when a FIFO runs dry — fewer,
        larger CMOB window reads, which is the point of the deep-window
        batching — but that cadence under-reports the modeled hardware's
        refill control traffic (``STREAM_REQUEST``/``ADDRESS_STREAM``) by
        20-70% on the commercial workloads.  When a message sink is
        attached this per-event pass reproduces the exact plane's
        half-empty top-up (including its standing requests against
        exhausted recording frontiers), keeping Figure 11's overhead
        accounting inside the declared tolerance band.
        """
        threshold8 = self._refill_threshold8
        for queue in slots:
            if queue.state_code == 2:  # drained: the exact plane skips these
                continue
            data = queue._fifo_data
            pos = queue._fifo_pos
            src_nodes = queue._src_nodes
            selected = queue._selected
            if selected is not None:
                indices: Tuple[int, ...] = (selected,)
            else:
                indices = tuple(range(len(data)))
            for i in indices:
                if src_nodes[i] < 0:
                    continue
                if len(data[i]) - pos[i] > threshold8:
                    continue
                was_dry = pos[i] >= len(data[i])
                if self._refill_one(node, queue, i) and was_dry:
                    # A revived FIFO invalidates the cached stall heads.
                    queue._stall_heads = None

    # -------------------------------------------------------------------- pump
    def _pump(self, node: NodeId, queue: StreamQueue, svb: Dict) -> Delivery:
        """Fused fetch + deliver: stream the agreed window into the SVB.

        The fast-plane replacement for ``_fetch_from`` + ``deliver_all``:
        pops the agreed prefix of the compared FIFOs (packed-slice equality,
        binary-searched divergence) up to the free lookahead budget,
        refilling dry FIFOs inline, and installs each non-resident block
        into the SVB immediately — LRU eviction, owner crediting and
        residency accounting inlined.  Returns ``(delivered, discarded)``.
        """
        if queue.state_code != 0:
            return 0, 0
        budget = queue.lookahead - queue.in_flight
        if budget <= 0:
            return 0, 0
        data = queue._fifo_data
        pos = queue._fifo_pos
        selected = queue._selected
        capacity = self._svb_capacity
        residency = self._svb_residency
        sink = self._message_sink
        entry = (queue, queue.queue_id)
        delivered = 0
        discarded = 0
        popped = 0

        if selected is None and len(data) == 2:
            # Dominant comparing shape: two FIFOs, window-at-a-time.
            d0 = data[0]
            d1 = data[1]
            p0 = pos[0]
            p1 = pos[1]
            n0 = len(d0)
            n1 = len(d1)
            diverged = False
            while budget > 0:
                k = (n0 - p0) >> _SHIFT
                k1 = (n1 - p1) >> _SHIFT
                if k1 < k:
                    k = k1
                if k <= 0:
                    # A FIFO ran dry: continue its stream from the source.
                    # Locals are re-synced even on failure — a failed refill
                    # may still have compacted the dry FIFO (cursor moved).
                    pos[0] = p0
                    pos[1] = p1
                    revived = self._refill_empty(node, queue)
                    d0 = data[0]
                    d1 = data[1]
                    p0 = pos[0]
                    p1 = pos[1]
                    n0 = len(d0)
                    n1 = len(d1)
                    if not revived:
                        break
                    continue
                m = k if k < budget else budget
                m8 = m << _SHIFT
                if d0[p0:p0 + m8] == d1[p1:p1 + m8]:
                    agreed = m
                else:
                    agreed = _lcp(d0, p0, d1, p1, m)
                    if agreed == 0:
                        diverged = True
                        break
                window = _window_unpacker(agreed)(d0, p0)
                agreed8 = agreed << _SHIFT
                p0 += agreed8
                p1 += agreed8
                popped += agreed
                for address in window:
                    if address in svb:
                        continue
                    if sink is not None:
                        self._emit_delivery(node, address)
                    svb[address] = entry
                    residency[address] = residency.get(address, 0) + 1
                    delivered += 1
                    budget -= 1
                if agreed < m:
                    diverged = True
                    break
            if not diverged and budget > 0 and (p0 >= n0) != (p1 >= n1):
                # One source is done for good: the survivor streams alone.
                i = 0 if p0 < n0 else 1
                d = data[i]
                p = p0 if i == 0 else p1
                size = n0 if i == 0 else n1
                while budget > 0 and p < size:
                    take = (size - p) >> _SHIFT
                    if take > budget:
                        take = budget
                    window = _window_unpacker(take)(d, p)
                    p += take << _SHIFT
                    popped += take
                    for address in window:
                        if address in svb:
                            continue
                        if sink is not None:
                            self._emit_delivery(node, address)
                        svb[address] = entry
                        residency[address] = residency.get(address, 0) + 1
                        delivered += 1
                        budget -= 1
                if i == 0:
                    p0 = p
                else:
                    p1 = p
            pos[0] = p0
            pos[1] = p1
            if popped:
                if p0 >= n0 and p1 >= n1:
                    # Both FIFOs consumed — but "drained" only if no source
                    # can refill them: the budget running out exactly at a
                    # window boundary must not kill a live stream (at the
                    # paper geometry the initial deep window is an exact
                    # multiple of the lookahead, so that alignment is the
                    # common case, not a corner).
                    queue.state_code = 2 if self._followed_exhausted(queue) else 0
                elif p0 >= n0 or p1 >= n1 or d0[p0:p0 + _SLOT] == d1[p1:p1 + _SLOT]:
                    queue.state_code = 0
                else:
                    queue.state_code = 1
                queue._stall_heads = None
                queue.total_fetched += popped
                queue.in_flight += delivered
            if len(svb) > capacity:
                discarded += self._trim_svb(svb, capacity)
            return delivered, discarded

        if selected is not None or len(data) == 1:
            # One followed FIFO (selected after a stall, or a single
            # candidate stream): plain slice walk with refill-on-empty.
            i = selected if selected is not None else 0
            fifo = data[i]
            p = pos[i]
            size = len(fifo)
            while budget > 0:
                take = (size - p) >> _SHIFT
                if take <= 0:
                    pos[i] = p
                    revived = self._refill_one(node, queue, i)
                    fifo = data[i]
                    p = pos[i]
                    size = len(fifo)
                    if not revived:
                        break
                    continue
                if take > budget:
                    take = budget
                window = _window_unpacker(take)(fifo, p)
                p += take << _SHIFT
                popped += take
                for address in window:
                    if address in svb:
                        continue
                    if sink is not None:
                        self._emit_delivery(node, address)
                    svb[address] = entry
                    residency[address] = residency.get(address, 0) + 1
                    delivered += 1
                    budget -= 1
            pos[i] = p
            if p >= len(data[i]) and self._followed_exhausted(queue):
                queue.state_code = 2
                queue._stall_heads = None
            if popped:
                queue.total_fetched += popped
                queue.in_flight += delivered
            if len(svb) > capacity:
                discarded += self._trim_svb(svb, capacity)
            return delivered, discarded

        # General comparing case (3+ FIFOs, pointer-count ablations): agreed
        # prefix against the first live FIFO, refill-on-empty between rounds.
        nf = len(data)
        refill_tried = False
        while budget > 0:
            live = [i for i in range(nf) if pos[i] < len(data[i])]
            if len(live) < nf and not refill_tried:
                refill_tried = True
                if self._refill_empty(node, queue):
                    continue
            if not live:
                break
            i0 = live[0]
            d0 = data[i0]
            p0 = pos[i0]
            k = min((len(data[i]) - pos[i]) >> _SHIFT for i in live)
            m = k if k < budget else budget
            agreed = m
            for i in live[1:]:
                di = data[i]
                pi = pos[i]
                a8 = agreed << _SHIFT
                if d0[p0:p0 + a8] != di[pi:pi + a8]:
                    agreed = _lcp(d0, p0, di, pi, agreed)
                    if agreed == 0:
                        break
            if agreed:
                window = _window_unpacker(agreed)(d0, p0)
                agreed8 = agreed << _SHIFT
                for i in live:
                    pos[i] += agreed8
                popped += agreed
                for address in window:
                    if address in svb:
                        continue
                    if sink is not None:
                        self._emit_delivery(node, address)
                    svb[address] = entry
                    residency[address] = residency.get(address, 0) + 1
                    delivered += 1
                    budget -= 1
            if agreed < m:
                break
            if agreed == 0:
                break
        if popped:
            queue._recompute_state()
            if queue.state_code == 2 and not self._followed_exhausted(queue):
                queue.state_code = 0  # dry but refillable: stay active
            queue.total_fetched += popped
            queue.in_flight += delivered
        if len(svb) > capacity:
            discarded += self._trim_svb(svb, capacity)
        return delivered, discarded

    def _followed_exhausted(self, queue: StreamQueue) -> bool:
        """True when no followed FIFO's source can produce another address.

        The state machine's DRAINED means "this stream is over"; an empty
        FIFO whose source CMOB has recorded past ``src_next`` is merely
        *dry* — the next pump's refill-on-empty revives it.  One int
        compare per followed FIFO.
        """
        src_nodes = queue._src_nodes
        src_next = queue._src_next
        sel = queue._selected
        indices = (sel,) if sel is not None else range(len(src_nodes))
        cmobs = self.cmobs
        for i in indices:
            src = src_nodes[i]
            if src >= 0 and src_next[i] < cmobs[src]._appended:
                return False
        return True

    def _trim_svb(self, svb: Dict, capacity: int) -> int:
        """Evict the over-capacity oldest SVB entries after a batched pump.

        Deliveries run capacity-unchecked inside ``_pump``; because new
        entries are always the newest in the insertion-ordered dict, one
        trim of the ``len(svb) - capacity`` oldest entries at pump end
        yields the same final LRU state and discard count as per-address
        eviction would.
        """
        residency = self._svb_residency
        over = len(svb) - capacity
        for _ in range(over):
            lru = next(iter(svb))
            vq, vqid = svb.pop(lru)
            if vq.queue_id == vqid and vq.in_flight > 0:
                vq.in_flight -= 1
            c = residency.pop(lru)
            if c > 1:
                residency[lru] = c - 1
        return over

    def _emit_delivery(self, node: NodeId, address: BlockAddress) -> None:
        """Streamed-data request/reply messages for one delivered block."""
        sink = self._message_sink
        home = self.directory.home_of(address)
        block_state = self._blocks_map.get(address)
        producer = block_state.last_writer if block_state is not None else None
        sink(
            CoherenceMessage(MessageType.STREAMED_DATA_REQUEST, node, home, address)
        )
        sink(
            CoherenceMessage(
                MessageType.STREAMED_DATA_REPLY,
                producer if producer is not None else home,
                node, address,
            )
        )

    # ------------------------------------------------------------------ events
    def _miss_scan(
        self, node: NodeId, address: BlockAddress, clock: int,
        slots: List[StreamQueue], svb: Dict,
    ) -> Delivery:
        """Stall resolution / stream realignment against an off-chip miss.

        Fast-plane counterpart of ``StreamEngine.on_offchip_miss``: stall
        heads are checked by packed slice equality (no unpacking, no
        per-scan head slicing — the packed head bytes are cached on the
        queue while it stalls), realignment is one bounded aligned ``find``
        inside ``skip_address`` (window = the lookahead), and matching
        queues pump immediately.
        """
        delivered = 0
        discarded = 0
        packed = None
        probe8 = self._probe_window8
        cmobs = self.cmobs
        for queue in slots:
            state = queue.state_code
            if state == 2:
                # Drained at the recording frontier: the exact plane's
                # half-empty top-up polls every event, so its queues rarely
                # empty while a source is still recording — a long stream
                # survives the frontier.  Refill-on-dry would let it die
                # here and split the realized stream (halving Figure 13's
                # scientific means).  Resume iff this miss *is* a source's
                # recorded continuation — one packed head peek into the
                # source CMOB — exactly a stall resolution against the
                # frontier.  Refilling on anything less (e.g. any frontier
                # advance) resumes out-of-phase streams whose windows the
                # consumer already passed, flooding the SVB with discards.
                if packed is None:
                    packed = address.to_bytes(_SLOT, _ORDER)
                src_nodes = queue._src_nodes
                sel = queue._selected
                indices = (
                    (sel,) if sel is not None
                    else range(len(queue._fifo_data))
                )
                for i in indices:
                    src = src_nodes[i]
                    if src < 0:
                        continue
                    nxt = queue._src_next[i]
                    cmob = cmobs[src]
                    if nxt >= cmob._appended:
                        continue
                    slot = (nxt % cmob.capacity) << _SHIFT
                    if cmob._data[slot:slot + _SLOT] != packed:
                        continue
                    # The processor already has this block: resume past it.
                    queue._src_next[i] = nxt + 1
                    queue._selected = i
                    queue._stall_heads = None
                    queue.last_active = clock
                    self._n_frontier_resumes += 1
                    if self._refill_one(node, queue, i):
                        queue.state_code = 0
                        d, x = self._pump(node, queue, svb)
                        delivered += d
                        discarded += x
                    break
                continue
            if state == 1:
                # Stalled implies no FIFO is selected: the miss resolves the
                # stall iff it matches one of the disagreeing heads.  Heads
                # cannot change during a stall, so the *packed* head bytes
                # are cached on the queue — the pre-check is one tuple
                # containment test, no slicing.
                if packed is None:
                    packed = address.to_bytes(_SLOT, _ORDER)
                heads = queue._stall_heads
                if heads is None:
                    data = queue._fifo_data
                    pos = queue._fifo_pos
                    if len(data) == 2:
                        p0 = pos[0]
                        p1 = pos[1]
                        heads = (
                            bytes(data[0][p0:p0 + _SLOT]),
                            bytes(data[1][p1:p1 + _SLOT]),
                        )
                    else:
                        heads = tuple(
                            [bytes(data[i][pos[i]:pos[i] + _SLOT])
                             for i in range(len(data))]
                        )
                    queue._stall_heads = heads
                if packed in heads:
                    i = heads.index(packed)
                    data = queue._fifo_data
                    pos = queue._fifo_pos
                    fifo = data[i]
                    p = pos[i] + _SLOT
                    pos[i] = p  # the processor already has this block
                    queue._selected = i
                    queue.state_code = 0 if p < len(fifo) else 2
                    queue._stall_heads = None
                    queue.last_active = clock
                    self._n_stalls_resolved += 1
                    if p < len(fifo):
                        d, x = self._pump(node, queue, svb)
                        delivered += d
                        discarded += x
            elif state == 0:
                # Realignment: drop the missed address from the front
                # (lookahead) window of the followed FIFOs — the bounded,
                # aligned ``find`` of ``skip_address``, inlined so the
                # packed key is built once per scan, not once per queue.
                if packed is None:
                    packed = address.to_bytes(_SLOT, _ORDER)
                data = queue._fifo_data
                pos = queue._fifo_pos
                sel = queue._selected
                found = False
                if sel is None:
                    for i in range(len(data)):
                        fifo = data[i]
                        p = pos[i]
                        stop = p + probe8
                        at = fifo.find(packed, p, stop)
                        while at >= 0 and (at - p) & _MASK:
                            at = fifo.find(packed, at + 1, stop)
                        if at >= 0:
                            del fifo[at:at + _SLOT]
                            found = True
                else:
                    fifo = data[sel]
                    p = pos[sel]
                    stop = p + probe8
                    at = fifo.find(packed, p, stop)
                    while at >= 0 and (at - p) & _MASK:
                        at = fifo.find(packed, at + 1, stop)
                    if at >= 0:
                        del fifo[at:at + _SLOT]
                        found = True
                if found:
                    queue._recompute_state()
                    queue.last_active = clock
                    if queue.state_code == 0:
                        d, x = self._pump(node, queue, svb)
                        delivered += d
                        discarded += x
        return delivered, discarded

    def offchip_miss(self, node: NodeId, address: BlockAddress) -> Delivery:
        """A capacity (non-coherent, non-cold) off-chip miss."""
        clock = self._clocks[node] + 1
        self._clocks[node] = clock
        return self._miss_scan(node, address, clock, self._slots[node],
                               self._svbs[node])

    def consume(self, node: NodeId, address: BlockAddress) -> Delivery:
        """A coherent read miss: the fused consumption event.

        Stall/realign scan, stream location via directory pointers, deep
        candidate-window forwarding, slot allocation, the initial pump, and
        the CMOB record + pointer push — one call, no intermediate batches.
        """
        clock = self._clocks[node] + 1
        self._clocks[node] = clock
        slots = self._slots[node]
        svb = self._svbs[node]
        sink = self._message_sink

        # (0) The miss may confirm a stalled stream or realign an active one.
        delivered, discarded = self._miss_scan(node, address, clock, slots, svb)

        # (1) Locate candidate streams via the directory's CMOB pointers,
        # building the queue's FIFO columns directly (no intermediate
        # window tuples).  The message-free loop is kept free of per-
        # pointer sink checks.
        directory = self.directory
        entries = directory._entries
        entry = entries.get(address)
        fifo_data = None
        if entry is not None:
            pointers = entry.cmob_pointers
            if pointers:
                compared = self._compared
                if len(pointers) > compared:
                    pointers = pointers[:compared]
                cmobs = self.cmobs
                depth = self._depth
                if sink is None:
                    for pnode, poff in pointers:
                        # The stream starts after the head (its data already
                        # came via the baseline coherence reply); one deep
                        # packed read.
                        start = poff + 1
                        window = bytearray()
                        count = cmobs[pnode].extend_into(window, start, depth)
                        if count:
                            if fifo_data is None:
                                fifo_data = [window]
                                src_nodes = [pnode]
                                src_next = [start + count]
                            else:
                                fifo_data.append(window)
                                src_nodes.append(pnode)
                                src_next.append(start + count)
                else:
                    home = directory.home_of(address)
                    for pnode, poff in pointers:
                        start = poff + 1
                        window = bytearray()
                        count = cmobs[pnode].extend_into(window, start, depth)
                        sink(
                            CoherenceMessage(
                                MessageType.STREAM_REQUEST, home, pnode, address
                            )
                        )
                        if count:
                            sink(
                                CoherenceMessage(
                                    MessageType.ADDRESS_STREAM, pnode, node,
                                    address, num_addresses=count,
                                )
                            )
                            if fifo_data is None:
                                fifo_data = [window]
                                src_nodes = [pnode]
                                src_next = [start + count]
                            else:
                                fifo_data.append(window)
                                src_nodes.append(pnode)
                                src_next.append(start + count)

        # (2) Allocate a queue slot and pump the agreed prefix.  Reclaimed
        # slots are rebound field-by-field and the FIFO columns are
        # assigned as fresh lists — cheaper than reset() + appends.
        if fifo_data is not None:
            n_streams = len(fifo_data)
            self._n_streams_forwarded += n_streams
            qid = self._next_queue_id
            self._next_queue_id = qid + 1
            if len(slots) >= self._max_queues:
                victim = slots[0]
                vact = victim.last_active
                for q in slots:
                    if q.last_active < vact:
                        victim = q
                        vact = q.last_active
                self._retired[node].append(victim.total_hits)
                victim.queue_id = qid
                victim.head = address
                victim._selected = None
                victim.in_flight = 0
                victim.total_fetched = 0
                victim.total_hits = 0
                victim._stall_heads = None
                queue = victim
                self._n_queue_reclaims += 1
            else:
                queue = StreamQueue(qid, address, self._lookahead)
                slots.append(queue)
            queue.last_active = clock
            queue._fifo_data = fifo_data
            queue._fifo_pos = [0] * n_streams
            queue._src_nodes = src_nodes
            queue._src_next = src_next
            queue._refill_pending = [False] * n_streams
            if n_streams == 1:
                queue.state_code = 0
            elif n_streams == 2:
                queue.state_code = 0 if fifo_data[0][:_SLOT] == fifo_data[1][:_SLOT] else 1
            else:
                queue._recompute_state()
            d, x = self._pump(node, queue, svb)
            delivered += d
            discarded += x
        else:
            self._n_no_stream_found += 1

        # (3) Record the miss in the consumer's CMOB and push the pointer
        # home (reusing the directory entry looked up in step 1).
        cmob = self.cmobs[node]
        offset = cmob._appended
        data = cmob._data
        slot = (offset % cmob.capacity) << _SHIFT
        if slot == len(data):
            data += address.to_bytes(_SLOT, _ORDER)
        else:
            data[slot:slot + _SLOT] = address.to_bytes(_SLOT, _ORDER)
        cmob._appended = offset + 1
        if entry is None:
            entry = DirectoryEntry()
            entries[address] = entry
        pointers = entry.cmob_pointers
        if self._ptr_cap2:
            # Specialized two-pointer update (the paper default): the list
            # is 0-2 long and ends up [(node, offset), newest-other].
            if not pointers:
                pointers.append((node, offset))
            else:
                p0 = pointers[0]
                if p0[0] == node:
                    pointers[0] = (node, offset)
                elif len(pointers) == 1:
                    pointers.insert(0, (node, offset))
                else:
                    pointers[1] = p0
                    pointers[0] = (node, offset)
        else:
            for i in range(len(pointers)):
                if pointers[i][0] == node:
                    del pointers[i]
                    break
            pointers.insert(0, (node, offset))
            keep = directory.cmob_pointers_per_block
            if len(pointers) > keep:
                del pointers[keep:]
        directory._n_cmob_pointer_updates += 1
        if sink is not None:
            sink(
                CoherenceMessage(
                    MessageType.CMOB_POINTER_UPDATE, node,
                    directory.home_of(address), address,
                )
            )
        self._n_cmob_appends += 1
        if sink is not None:
            self._topup_refills(node, slots)
        return delivered, discarded

    def hit(self, node: NodeId, address: BlockAddress) -> Delivery:
        """An SVB hit: consume the entry, extend the stream, record the hit.

        The caller (the replay loop) has just probed the SVB, so the entry
        is popped unconditionally.  Queue crediting is one identity check on
        the ``(queue, queue_id)`` entry — a reclaimed slot no longer matches.
        """
        clock = self._clocks[node] + 1
        self._clocks[node] = clock
        svb = self._svbs[node]
        queue, qid = svb.pop(address)
        self._n_svb_hits += 1
        delivered = 0
        discarded = 0
        if queue.queue_id == qid:
            if queue.in_flight > 0:
                queue.in_flight -= 1
            queue.total_hits += 1
            queue.last_active = clock
            if (
                queue.state_code == 0
                and queue.lookahead - queue.in_flight >= self._pump_threshold
            ):
                delivered, discarded = self._pump(node, queue, svb)
        # Every SVB entry carries a residency count >= 1 by construction.
        residency = self._svb_residency
        count = residency.pop(address)
        if count > 1:
            residency[address] = count - 1
        # Record the hit in the CMOB (a hit replaces the miss one-for-one).
        directory = self.directory
        cmob = self.cmobs[node]
        offset = cmob._appended
        data = cmob._data
        slot = (offset % cmob.capacity) << _SHIFT
        if slot == len(data):
            data += address.to_bytes(_SLOT, _ORDER)
        else:
            data[slot:slot + _SLOT] = address.to_bytes(_SLOT, _ORDER)
        cmob._appended = offset + 1
        entries = directory._entries
        entry = entries.get(address)
        if entry is None:
            entry = DirectoryEntry()
            entries[address] = entry
        pointers = entry.cmob_pointers
        if self._ptr_cap2:
            if not pointers:
                pointers.append((node, offset))
            else:
                p0 = pointers[0]
                if p0[0] == node:
                    pointers[0] = (node, offset)
                elif len(pointers) == 1:
                    pointers.insert(0, (node, offset))
                else:
                    pointers[1] = p0
                    pointers[0] = (node, offset)
        else:
            for i in range(len(pointers)):
                if pointers[i][0] == node:
                    del pointers[i]
                    break
            pointers.insert(0, (node, offset))
            keep = directory.cmob_pointers_per_block
            if len(pointers) > keep:
                del pointers[keep:]
        directory._n_cmob_pointer_updates += 1
        if self._message_sink is not None:
            self._message_sink(
                CoherenceMessage(
                    MessageType.CMOB_POINTER_UPDATE, node,
                    directory.home_of(address), address,
                )
            )
            self._topup_refills(node, self._slots[node])
        self._n_cmob_appends += 1
        return delivered, discarded

    def invalidate(self, address: BlockAddress) -> int:
        """A write invalidated matching SVB entries system-wide.

        The replay loop pre-gates on the residency map, so this only runs
        when at least one SVB holds the block.  Returns the number of
        entries invalidated (each is a discard).
        """
        invalidated = 0
        residency = self._svb_residency
        for svb in self._svbs:
            entry = svb.pop(address, None)
            if entry is not None:
                queue, qid = entry
                if queue.queue_id == qid and queue.in_flight > 0:
                    queue.in_flight -= 1
                invalidated += 1
                count = residency.pop(address)
                if count > 1:
                    residency[address] = count - 1
        self._n_svb_invalidations += invalidated
        return invalidated

    # -------------------------------------------------------------- end of run
    def drain(self) -> Dict[NodeId, int]:
        """Flush every SVB; per-node counts of unconsumed (discarded) blocks."""
        leftovers: Dict[NodeId, int] = {}
        for node, svb in enumerate(self._svbs):
            leftovers[node] = len(svb)
            svb.clear()
        self._svb_residency.clear()
        return leftovers

    def stream_length_samples(self, node: NodeId) -> List[int]:
        """Realized stream lengths (hits per queue), retired and live."""
        return self._retired[node] + [q.total_hits for q in self._slots[node]]
