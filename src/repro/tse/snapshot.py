"""Warm-state snapshot/restore for the functional simulator.

The paper warms caches, CMOBs and directory state before measuring
(Section 4).  At small trace sizes that warm ramp is a real problem twice
over: it costs wall clock on every run, and — for the scientific workloads,
whose first iterations are all cold misses — whatever part of it sits inside
the measurement window drags trace coverage below the paper's long-trace
limit (the ROADMAP's em3d/ocean cold-start item).

This module fixes both with the columnar backbone:

* the workload's emission is deterministic and chunk-cached
  (:func:`repro.experiments.runner.trace_for`), so the *trace side* of a
  warm state — RNG state, primitive state, interleaving position — is
  captured implicitly by splitting the packed chunk list at the warm
  boundary;
* the *simulator side* (directory entries and CMOB pointers, per-node CMOB
  contents, stream queues, SVBs, protocol block versions, per-node access
  clocks) is captured by pickling the whole :class:`TSESimulator` after the
  ramp has been replayed once.

Every subsequent run of the same ``(workload, warm size, seed, nodes,
config)`` point restores the simulator from the cached snapshot and replays
only the measurement window.  Restores are bit-identical to replaying the
ramp — locked in by ``tests/test_perf_infra.py`` — and snapshots are
disabled simply by not using this module (nothing in the plain
``run``/``run_chunks`` path changes behaviour).
"""

from __future__ import annotations

import pickle
import sqlite3
import time
from pathlib import Path
from typing import Dict, List, MutableMapping, Optional, Tuple

from repro.common.chunk import TraceChunk
from repro.common.config import MODE_EXACT, TSEConfig, mode_key, resolve_mode
from repro.tse.simulator import TSESimulator, TSEStats

__all__ = [
    "SNAPSHOT_FORMAT",
    "SnapshotFormatError",
    "capture",
    "restore",
    "warm_tse_run",
    "snapshot_key",
    "clear_snapshots",
    "snapshot_info",
    "PersistentSnapshotStore",
]

#: Version of the snapshot payload format.  Bump whenever the pickled
#: simulator's internal representation changes incompatibly (e.g. the PR 5
#: move to byte-packed CMOB rings and stream-queue FIFOs, which is format 2;
#: format 1 was the PR 3 list-backed layout).  The version participates in
#: :func:`snapshot_key`, so persisted pre-refactor snapshots simply never
#: match — a restore falls back to a cold ramp instead of unpickling an
#: object whose attributes no longer exist — and it is embedded in the
#: payload itself so a payload from a mismatched writer is rejected loudly
#: by :func:`restore` rather than half-restored.
SNAPSHOT_FORMAT = 2


class SnapshotFormatError(RuntimeError):
    """A snapshot payload was written by an incompatible format version."""


def capture(simulator: TSESimulator) -> bytes:
    """Serialize a simulator's complete functional state.

    Only message-free simulators can be captured: a traffic-accounting run
    holds an interconnect sink whose accounting is not part of the warm
    state contract.  The payload embeds :data:`SNAPSHOT_FORMAT`.
    """
    if simulator.traffic is not None:
        raise ValueError("cannot snapshot a traffic-accounting simulator")
    return pickle.dumps((SNAPSHOT_FORMAT, simulator), protocol=pickle.HIGHEST_PROTOCOL)


def restore(snapshot: bytes, expected_mode: Optional[str] = None) -> TSESimulator:
    """Materialize an independent simulator from a :func:`capture` payload.

    Raises :class:`SnapshotFormatError` for payloads without a matching
    format header (e.g. a raw pre-versioning pickle, or one captured by a
    different simulator layout); callers that can recompute — like
    :func:`warm_tse_run` — treat that as a cache miss.

    ``expected_mode`` makes the restore refuse a cross-mode payload: the
    exact and fast planes produce different (deliberately non-bit-identical)
    warm states, so resuming an exact measurement from a fast-mode ramp —
    or vice versa — would silently blend the two pipelines.  Keys already
    separate the modes; this guard catches payloads reached any other way.
    """
    try:
        payload = pickle.loads(snapshot)
    except Exception as exc:  # unpicklable / truncated / stale class layout
        raise SnapshotFormatError(f"unreadable snapshot payload: {exc}") from exc
    if (
        not isinstance(payload, tuple)
        or len(payload) != 2
        or payload[0] != SNAPSHOT_FORMAT
        or not isinstance(payload[1], TSESimulator)
    ):
        raise SnapshotFormatError(
            "snapshot payload is not format "
            f"{SNAPSHOT_FORMAT} (got {type(payload).__name__})"
        )
    simulator = payload[1]
    if expected_mode is not None:
        captured = getattr(simulator, "mode", MODE_EXACT)
        if captured != expected_mode:
            raise SnapshotFormatError(
                f"cross-mode restore refused: snapshot was captured in "
                f"{captured!r} mode, caller expects {expected_mode!r}"
            )
    return simulator


#: Process-wide snapshot cache: determinism-key text -> pickled simulator.
_SNAPSHOTS: Dict[str, bytes] = {}
_HITS = 0
_MISSES = 0


def snapshot_key(
    workload: str,
    warm_accesses: int,
    total_accesses: int,
    seed: int,
    num_nodes: int,
    config: TSEConfig,
    mode: Optional[str] = None,
) -> str:
    """Canonical text key of one warm-state point (stable across processes).

    Includes :data:`SNAPSHOT_FORMAT`, so snapshots persisted by an older
    simulator layout are invalidated by key — never deserialized — and the
    resolved simulation mode (with the fast plane's result-affecting env
    knobs, via :func:`repro.common.config.mode_key`), so exact and fast
    warm states occupy disjoint key spaces (``restore`` additionally
    refuses a cross-mode payload outright).
    """
    return repr((SNAPSHOT_FORMAT, workload, warm_accesses, total_accesses,
                 seed, num_nodes, config, mode_key(mode)))


class PersistentSnapshotStore(MutableMapping):
    """A sqlite-backed snapshot mapping (text key -> pickled simulator).

    Drop-in replacement for the in-process snapshot dict that survives
    restarts and is shared between scheduler worker processes — pass it to
    :func:`warm_tse_run` as ``snapshot_store``.  It points at the service
    result store's sqlite file by default (same ``snapshots`` table the
    store GC clears), but any path works.  Writes are first-write-wins:
    snapshots are deterministic per key, so a concurrent duplicate insert
    loses nothing.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS snapshots ("
                "key TEXT PRIMARY KEY, payload BLOB NOT NULL, created REAL NOT NULL)"
            )

    def _connect(self) -> sqlite3.Connection:
        from repro.common.sqlitedb import connect

        return connect(self.path)

    def __getitem__(self, key: str) -> bytes:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT payload FROM snapshots WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            raise KeyError(key)
        return row[0]

    def __setitem__(self, key: str, payload: bytes) -> None:
        with self._connect() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO snapshots (key, payload, created) "
                "VALUES (?, ?, ?)",
                # Row-creation metadata for store GC — never read back into
                # results, so the wall-clock ban does not apply.
                (key, sqlite3.Binary(payload), time.time()),  # repro-lint: disable=RL003
            )

    def __delitem__(self, key: str) -> None:
        with self._connect() as conn:
            if conn.execute("DELETE FROM snapshots WHERE key = ?", (key,)).rowcount == 0:
                raise KeyError(key)

    def __iter__(self):
        with self._connect() as conn:
            keys = [row[0] for row in conn.execute("SELECT key FROM snapshots")]
        return iter(keys)

    def __len__(self) -> int:
        with self._connect() as conn:
            return conn.execute("SELECT COUNT(*) FROM snapshots").fetchone()[0]


def clear_snapshots() -> None:
    """Drop every cached warm-state snapshot."""
    global _HITS, _MISSES
    _SNAPSHOTS.clear()
    _HITS = 0
    _MISSES = 0


def snapshot_info() -> Dict[str, int]:
    """Cache statistics (size / hits / misses / total payload bytes)."""
    return {
        "size": len(_SNAPSHOTS),
        "hits": _HITS,
        "misses": _MISSES,
        "bytes": sum(len(payload) for payload in _SNAPSHOTS.values()),
    }


def _split_chunks(
    chunks, warm_accesses: int
) -> Tuple[List[TraceChunk], List[TraceChunk]]:
    """Split a chunk sequence at exactly ``warm_accesses`` accesses."""
    warm: List[TraceChunk] = []
    measure: List[TraceChunk] = []
    remaining = warm_accesses
    for chunk in chunks:
        if remaining <= 0:
            measure.append(chunk)
            continue
        size = len(chunk)
        if size <= remaining:
            warm.append(chunk)
            remaining -= size
        else:
            warm.append(chunk.slice(0, remaining))
            measure.append(chunk.slice(remaining))
            remaining = 0
    return warm, measure


def warm_tse_run(
    workload: str,
    tse_config: Optional[TSEConfig] = None,
    *,
    warm_accesses: int,
    measure_accesses: int,
    seed: int = 42,
    num_nodes: int = 16,
    use_snapshot: bool = True,
    snapshot_store: Optional[MutableMapping] = None,
    mode: Optional[str] = None,
) -> TSEStats:
    """Run ``measure_accesses`` of a workload after a ``warm_accesses`` ramp.

    The ramp runs outside the measurement window (statistics reset at the
    boundary, state carries over — exactly ``run_chunks``'s
    ``warmup_accesses`` semantics).  With ``use_snapshot`` (the default)
    the post-ramp simulator state is cached per determinism key, so every
    later run of the same point skips straight to the measurement window;
    with ``use_snapshot=False`` the ramp is replayed, which is the
    bit-identity reference the tests compare against.

    ``snapshot_store`` substitutes a different mapping for the in-process
    snapshot cache — pass a :class:`PersistentSnapshotStore` to share warm
    state across worker processes and restarts (the service scheduler does
    this for warm-state campaigns).
    """
    global _HITS, _MISSES
    if warm_accesses < 0 or measure_accesses <= 0:
        raise ValueError("warm_accesses must be >= 0 and measure_accesses > 0")
    from repro.experiments.runner import trace_for

    config = tse_config if tse_config is not None else TSEConfig.paper_default()
    resolved_mode = resolve_mode(mode)
    trace = trace_for(workload, warm_accesses + measure_accesses, seed, num_nodes)
    warm_chunks, measure_chunks = _split_chunks(trace.chunks(), warm_accesses)

    store = snapshot_store if snapshot_store is not None else _SNAPSHOTS
    key = snapshot_key(workload, warm_accesses, len(trace), seed, num_nodes,
                       config, mode=resolved_mode)
    simulator: Optional[TSESimulator] = None
    if use_snapshot:
        payload = store.get(key)
        if payload is not None:
            try:
                simulator = restore(payload, expected_mode=resolved_mode)
                _HITS += 1
            except SnapshotFormatError:
                # A stale, foreign, or cross-mode payload under the current
                # key: fall back to the cold ramp and overwrite it below.
                simulator = None
                store.pop(key, None)
    if simulator is None:
        simulator = TSESimulator(num_nodes, tse_config=config, mode=resolved_mode)
        for chunk in warm_chunks:
            simulator._replay_chunk(chunk)
        if use_snapshot:
            _MISSES += 1
            store[key] = capture(simulator)
    simulator.reset_stats(workload)
    return simulator.run_chunks(measure_chunks, name=workload)
