"""The Temporal Streaming Engine (TSE) — the paper's core contribution.

Components (Section 3 of the paper):

* :mod:`repro.tse.cmob` — the Coherence Miss Order Buffer, a large circular
  buffer in each node's main memory recording the node's coherent-read-miss
  order.
* :mod:`repro.tse.svb` — the Streamed Value Buffer, a small fully-associative
  buffer holding streamed blocks until the processor consumes them.
* :mod:`repro.tse.stream_queue` — a group of FIFOs holding candidate streams
  with a common head, compared element-by-element to gauge accuracy.
* :mod:`repro.tse.stream_engine` — per-node engine that manages stream
  queues, fetches blocks with bounded lookahead, and reacts to SVB hits,
  misses and invalidations.
* :mod:`repro.tse.engine` — the per-node TSE controller plus the system-level
  glue (directory CMOB pointers, stream request/forward protocol).
* :mod:`repro.tse.simulator` — functional trace-driven simulation of a whole
  DSM with TSE, producing coverage / discard / traffic statistics.
* :mod:`repro.tse.snapshot` — warm-state snapshot/restore: run a workload's
  cold ramp once, pickle the warmed simulator, and replay only the
  measurement window on subsequent runs.
"""

from repro.tse.cmob import CMOB
from repro.tse.engine import NodeTSE, TemporalStreamingSystem
from repro.tse.simulator import TSESimulator, TSEStats
from repro.tse.snapshot import warm_tse_run
from repro.tse.stream_engine import StreamEngine
from repro.tse.stream_queue import QueueState, StreamQueue
from repro.tse.svb import StreamedValueBuffer, SVBEntry

__all__ = [
    "CMOB",
    "StreamedValueBuffer",
    "SVBEntry",
    "StreamQueue",
    "QueueState",
    "StreamEngine",
    "NodeTSE",
    "TemporalStreamingSystem",
    "TSESimulator",
    "TSEStats",
    "warm_tse_run",
]
