"""Coherence Miss Order Buffer (CMOB).

Each node appends the addresses of its coherent read misses (and of useful
streamed blocks, which replace misses one-for-one) to a large circular buffer
held in a private region of main memory (Section 3.1).  The directory stores,
for each block, pointers into the CMOBs of its most recent consumers; on a
subsequent miss those pointers let TSE read the sub-sequence that followed
the block last time — the candidate stream.

Offsets handed out by :meth:`CMOB.append` are *monotonic append counts*, not
physical slot indices, so stale pointers (overwritten after wrap-around) are
detected rather than silently returning unrelated addresses.

Storage is a flat circular buffer of 64-bit entries grown lazily up to
``capacity`` slots, held as a packed little-endian byte buffer
(``bytearray``, 8 bytes per entry).  The byte-packed representation is
deliberate: it is the one CPython buffer type whose comparisons and searches
run at ``memcmp``/``memmem`` speed without boxing an int per element (the
``array`` module's rich comparison unpacks every item), which is what makes
the stream engine's window-at-a-time agreement checks and miss probes
C-fast.  The monotonic append count doubles as the validity watermark
(``oldest_valid_offset = appended - capacity``).  Stream reads are served as
packed windows — one or two slice copies, never a per-offset loop — and the
refill path appends a window straight onto a destination buffer
(:meth:`extend_into`), so a 32–64 address refill is a single ``memcpy``-class
operation end to end.

Wrap-around semantics of window reads (locked by tests):

* a *stale* start offset (older than :attr:`oldest_valid_offset`) yields an
  **empty** window — never a partial window resynchronized to the oldest
  resident entry, because the entries that replaced the overwritten ones
  belong to an unrelated, much later part of the order;
* a *future* start offset (``>= appended``) likewise yields nothing;
* a valid start is truncated at the append watermark: every returned entry
  is resident and positionally exact, so windows may be shorter than
  requested but are never silently padded or misaligned.

Appends and stream reads sit on the simulator's hot path, so activity is
accumulated in plain integer attributes and published into the
:class:`~repro.common.stats.StatsRegistry` lazily, when ``stats`` is read.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Optional, Union

from repro.common.stats import StatsRegistry, publish_counters
from repro.common.types import BlockAddress, NodeId
from repro.tse.layout import (
    NEEDS_BYTESWAP,
    SLOT_BYTEORDER,
    SLOT_BYTES,
    SLOT_CODE,
    SLOT_SHIFT,
)

#: Typecode of the unpacked view of CMOB windows: unsigned 64-bit addresses.
#: (Alias of the shared slot layout in :mod:`repro.tse.layout`.)
CMOB_TYPECODE = SLOT_CODE

#: Bytes per packed CMOB entry (alias of the shared slot layout).
ENTRY_WIDTH = SLOT_BYTES

# Short aliases used on the hot paths below.
_SLOT = SLOT_BYTES
_SHIFT = SLOT_SHIFT
_ORDER = SLOT_BYTEORDER

#: The packed layout is explicitly little-endian, so the ``array``-based
#: pack/unpack helpers byteswap on big-endian hosts (see layout module).
_NEEDS_SWAP = NEEDS_BYTESWAP


def pack_window(addresses: Iterable[int]) -> bytearray:
    """Pack an iterable of block addresses into the FIFO byte layout."""
    packed = array(CMOB_TYPECODE, addresses)
    if _NEEDS_SWAP:
        packed.byteswap()
    return bytearray(packed.tobytes())


def unpack_window(window: "Union[bytes, bytearray, memoryview]") -> "array[int]":
    """Unpack a byte window back into an ``array('Q')`` of addresses."""
    unpacked = array(CMOB_TYPECODE)
    unpacked.frombytes(bytes(window))
    if _NEEDS_SWAP:
        unpacked.byteswap()
    return unpacked


class CMOB:
    """A fixed-capacity circular buffer of block addresses with monotonic offsets."""

    __slots__ = (
        "capacity",
        "node_id",
        "entry_bytes",
        "_stats",
        "_data",
        "_appended",
        "_n_stream_reads",
        "_n_addresses_streamed",
    )

    def __init__(self, capacity: int, node_id: NodeId = 0, entry_bytes: int = 6) -> None:
        if capacity <= 0:
            raise ValueError("CMOB capacity must be positive")
        self.capacity = capacity
        self.node_id = node_id
        self.entry_bytes = entry_bytes
        self._stats = StatsRegistry(prefix=f"cmob.n{node_id}")
        #: Physical storage, grown lazily up to ``capacity`` packed entries:
        #: slot ``offset % capacity`` is appended exactly when the buffer
        #: first reaches it, so ``len(_data) == SLOT_BYTES * min(appended, capacity)``
        #: always holds and huge "near-infinite" CMOBs cost only what they
        #: use.
        self._data = bytearray()
        #: Total number of appends ever performed; the next append gets this
        #: offset.  Doubles as the validity watermark: offsets below
        #: ``_appended - capacity`` have been overwritten.
        self._appended = 0
        self._n_stream_reads = 0
        self._n_addresses_streamed = 0

    @property
    def stats(self) -> StatsRegistry:
        """Statistics registry, synchronized with the plain-int counters on read."""
        return publish_counters(self._stats, {
            "appends": self._appended,
            "stream_reads": self._n_stream_reads,
            "addresses_streamed": self._n_addresses_streamed,
        })

    # ------------------------------------------------------------------ append
    def append(self, address: BlockAddress) -> int:
        """Append a miss address; return its monotonic offset.

        The offset is what the node sends to the directory as the CMOB
        pointer for this block (Section 3.1 step 4).
        """
        offset = self._appended
        data = self._data
        slot = (offset % self.capacity) << _SHIFT
        if slot == len(data):
            data += address.to_bytes(_SLOT, _ORDER)
        else:
            data[slot:slot + _SLOT] = address.to_bytes(_SLOT, _ORDER)
        self._appended = offset + 1
        return offset

    @property
    def appended(self) -> int:
        """Total number of entries ever appended."""
        return self._appended

    @property
    def oldest_valid_offset(self) -> int:
        """Smallest monotonic offset still resident (not yet overwritten)."""
        return max(0, self._appended - self.capacity)

    def __len__(self) -> int:
        """Number of entries currently resident."""
        return min(self._appended, self.capacity)

    # -------------------------------------------------------------------- reads
    def is_valid_offset(self, offset: int) -> bool:
        """Is the entry at ``offset`` still resident (not overwritten, not future)?"""
        return self.oldest_valid_offset <= offset < self._appended

    def read(self, offset: int) -> Optional[BlockAddress]:
        """Read the entry at a monotonic offset; None if stale or out of range."""
        if not self.is_valid_offset(offset):
            return None
        slot = (offset % self.capacity) << _SHIFT
        return int.from_bytes(self._data[slot:slot + _SLOT], _ORDER)

    def read_stream(self, start_offset: int, count: int) -> array:
        """Read up to ``count`` addresses starting at ``start_offset``.

        This models the protocol controller reading a stream of subsequent
        addresses from the CMOB (Section 3.2 step 3).  The returned packed
        ``array('Q')`` window is a fresh snapshot (safe against later
        wrap-around overwrites); it may be shorter than ``count`` when the
        order ends, and is empty when the start is stale or in the future.
        The engine's hot paths use :meth:`extend_into` instead, which keeps
        the window in the packed byte form end to end.
        """
        window = array(CMOB_TYPECODE)
        if count <= 0:
            return window
        self._n_stream_reads += 1
        end = self._appended
        capacity = self.capacity
        if start_offset < 0 or start_offset < end - capacity or start_offset >= end:
            return window
        stop = start_offset + count
        if stop > end:
            stop = end
        lo = (start_offset % capacity) << _SHIFT
        hi = lo + ((stop - start_offset) << _SHIFT)
        data = self._data
        cap8 = capacity << _SHIFT
        if hi <= cap8:
            window.frombytes(bytes(data[lo:hi]))
        else:
            window.frombytes(bytes(data[lo:]) + bytes(data[: hi - cap8]))
        if _NEEDS_SWAP:
            window.byteswap()
        self._n_addresses_streamed += len(window)
        return window

    def extend_into(self, dest: bytearray, start_offset: int, count: int) -> int:
        """Append a packed stream window directly onto ``dest``; return its length.

        The batched-refill primitive: one or two ``memcpy``-class extends
        straight into a stream-queue FIFO buffer, with no intermediate
        window object and no per-address reads.  Returns the number of
        *addresses* appended (window truncation rules as in
        :meth:`read_stream`).
        """
        if count <= 0:
            return 0
        self._n_stream_reads += 1
        end = self._appended
        capacity = self.capacity
        if start_offset < 0 or start_offset < end - capacity or start_offset >= end:
            return 0
        stop = start_offset + count
        if stop > end:
            stop = end
        n = stop - start_offset
        lo = (start_offset % capacity) << _SHIFT
        hi = lo + (n << _SHIFT)
        data = self._data
        cap8 = capacity << _SHIFT
        if hi <= cap8:
            dest += data[lo:hi]
        else:
            dest += data[lo:]
            dest += data[: hi - cap8]
        self._n_addresses_streamed += n
        return n

    # ---------------------------------------------------------------- reporting
    @property
    def storage_bytes(self) -> int:
        """Modelled storage footprint of the CMOB in bytes (6-byte entries)."""
        return self.capacity * self.entry_bytes

    def utilization(self) -> float:
        """Fraction of the CMOB currently holding live entries."""
        return len(self) / self.capacity

    def __repr__(self) -> str:
        return (
            f"CMOB(node={self.node_id}, capacity={self.capacity}, "
            f"appended={self._appended})"
        )
