"""Coherence Miss Order Buffer (CMOB).

Each node appends the addresses of its coherent read misses (and of useful
streamed blocks, which replace misses one-for-one) to a large circular buffer
held in a private region of main memory (Section 3.1).  The directory stores,
for each block, pointers into the CMOBs of its most recent consumers; on a
subsequent miss those pointers let TSE read the sub-sequence that followed
the block last time — the candidate stream.

Offsets handed out by :meth:`CMOB.append` are *monotonic append counts*, not
physical slot indices, so stale pointers (overwritten after wrap-around) are
detected rather than silently returning unrelated addresses.

Appends and stream reads sit on the simulator's hot path, so activity is
accumulated in plain integer attributes and published into the
:class:`~repro.common.stats.StatsRegistry` lazily, when ``stats`` is read.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.stats import StatsRegistry, publish_counters
from repro.common.types import BlockAddress, NodeId


class CMOB:
    """A fixed-capacity circular buffer of block addresses with monotonic offsets."""

    __slots__ = (
        "capacity",
        "node_id",
        "entry_bytes",
        "_stats",
        "_slots",
        "_appended",
        "_n_stream_reads",
        "_n_addresses_streamed",
    )

    def __init__(self, capacity: int, node_id: NodeId = 0, entry_bytes: int = 6) -> None:
        if capacity <= 0:
            raise ValueError("CMOB capacity must be positive")
        self.capacity = capacity
        self.node_id = node_id
        self.entry_bytes = entry_bytes
        self._stats = StatsRegistry(prefix=f"cmob.n{node_id}")
        #: Physical storage, grown lazily up to ``capacity`` entries: slot
        #: ``offset % capacity`` is appended exactly when the buffer first
        #: reaches it, so ``len(_slots) == min(appended, capacity)`` always
        #: holds and huge "near-infinite" CMOBs cost only what they use.
        self._slots: List[BlockAddress] = []
        #: Total number of appends ever performed; the next append gets this offset.
        self._appended = 0
        self._n_stream_reads = 0
        self._n_addresses_streamed = 0

    @property
    def stats(self) -> StatsRegistry:
        """Statistics registry, synchronized with the plain-int counters on read."""
        return publish_counters(self._stats, {
            "appends": self._appended,
            "stream_reads": self._n_stream_reads,
            "addresses_streamed": self._n_addresses_streamed,
        })

    # ------------------------------------------------------------------ append
    def append(self, address: BlockAddress) -> int:
        """Append a miss address; return its monotonic offset.

        The offset is what the node sends to the directory as the CMOB
        pointer for this block (Section 3.1 step 4).
        """
        offset = self._appended
        slots = self._slots
        slot = offset % self.capacity
        if slot == len(slots):
            slots.append(address)
        else:
            slots[slot] = address
        self._appended = offset + 1
        return offset

    @property
    def appended(self) -> int:
        """Total number of entries ever appended."""
        return self._appended

    @property
    def oldest_valid_offset(self) -> int:
        """Smallest monotonic offset still resident (not yet overwritten)."""
        return max(0, self._appended - self.capacity)

    def __len__(self) -> int:
        """Number of entries currently resident."""
        return min(self._appended, self.capacity)

    # -------------------------------------------------------------------- reads
    def is_valid_offset(self, offset: int) -> bool:
        """Is the entry at ``offset`` still resident (not overwritten, not future)?"""
        return self.oldest_valid_offset <= offset < self._appended

    def read(self, offset: int) -> Optional[BlockAddress]:
        """Read the entry at a monotonic offset; None if stale or out of range."""
        if not self.is_valid_offset(offset):
            return None
        return self._slots[offset % self.capacity]

    def read_stream(self, start_offset: int, count: int) -> List[BlockAddress]:
        """Read up to ``count`` addresses starting at ``start_offset``.

        This models the protocol controller reading a stream of subsequent
        addresses from the CMOB (Section 3.2 step 3).  The returned list may
        be shorter than ``count`` when the order ends or the start is stale.
        """
        if count <= 0:
            return []
        self._n_stream_reads += 1
        end = self._appended
        capacity = self.capacity
        oldest = end - capacity
        if oldest < 0:
            oldest = 0
        # A stale (overwritten) or future start yields nothing; otherwise
        # every offset in [start, min(start + count, end)) is resident and
        # non-None, so the window can be copied with at most two slices.
        if start_offset < oldest or start_offset >= end:
            return []
        stop = start_offset + count
        if stop > end:
            stop = end
        lo = start_offset % capacity
        hi = lo + (stop - start_offset)
        if hi <= capacity:
            addresses = self._slots[lo:hi]
        else:
            addresses = self._slots[lo:] + self._slots[: hi - capacity]
        self._n_addresses_streamed += len(addresses)
        return addresses

    # ---------------------------------------------------------------- reporting
    @property
    def storage_bytes(self) -> int:
        """Physical storage footprint of the CMOB in bytes."""
        return self.capacity * self.entry_bytes

    def utilization(self) -> float:
        """Fraction of the CMOB currently holding live entries."""
        return len(self) / self.capacity

    def __repr__(self) -> str:
        return (
            f"CMOB(node={self.node_id}, capacity={self.capacity}, "
            f"appended={self._appended})"
        )
