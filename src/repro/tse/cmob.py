"""Coherence Miss Order Buffer (CMOB).

Each node appends the addresses of its coherent read misses (and of useful
streamed blocks, which replace misses one-for-one) to a large circular buffer
held in a private region of main memory (Section 3.1).  The directory stores,
for each block, pointers into the CMOBs of its most recent consumers; on a
subsequent miss those pointers let TSE read the sub-sequence that followed
the block last time — the candidate stream.

Offsets handed out by :meth:`CMOB.append` are *monotonic append counts*, not
physical slot indices, so stale pointers (overwritten after wrap-around) are
detected rather than silently returning unrelated addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.stats import StatsRegistry
from repro.common.types import BlockAddress, NodeId


class CMOB:
    """A fixed-capacity circular buffer of block addresses with monotonic offsets."""

    def __init__(self, capacity: int, node_id: NodeId = 0, entry_bytes: int = 6) -> None:
        if capacity <= 0:
            raise ValueError("CMOB capacity must be positive")
        self.capacity = capacity
        self.node_id = node_id
        self.entry_bytes = entry_bytes
        self.stats = StatsRegistry(prefix=f"cmob.n{node_id}")
        self._slots: List[Optional[BlockAddress]] = [None] * capacity
        #: Total number of appends ever performed; the next append gets this offset.
        self._appended = 0

    # ------------------------------------------------------------------ append
    def append(self, address: BlockAddress) -> int:
        """Append a miss address; return its monotonic offset.

        The offset is what the node sends to the directory as the CMOB
        pointer for this block (Section 3.1 step 4).
        """
        offset = self._appended
        self._slots[offset % self.capacity] = address
        self._appended += 1
        self.stats.counter("appends").increment()
        return offset

    @property
    def appended(self) -> int:
        """Total number of entries ever appended."""
        return self._appended

    @property
    def oldest_valid_offset(self) -> int:
        """Smallest monotonic offset still resident (not yet overwritten)."""
        return max(0, self._appended - self.capacity)

    def __len__(self) -> int:
        """Number of entries currently resident."""
        return min(self._appended, self.capacity)

    # -------------------------------------------------------------------- reads
    def is_valid_offset(self, offset: int) -> bool:
        """Is the entry at ``offset`` still resident (not overwritten, not future)?"""
        return self.oldest_valid_offset <= offset < self._appended

    def read(self, offset: int) -> Optional[BlockAddress]:
        """Read the entry at a monotonic offset; None if stale or out of range."""
        if not self.is_valid_offset(offset):
            return None
        return self._slots[offset % self.capacity]

    def read_stream(self, start_offset: int, count: int) -> List[BlockAddress]:
        """Read up to ``count`` addresses starting at ``start_offset``.

        This models the protocol controller reading a stream of subsequent
        addresses from the CMOB (Section 3.2 step 3).  The returned list may
        be shorter than ``count`` when the order ends or the start is stale.
        """
        if count <= 0:
            return []
        self.stats.counter("stream_reads").increment()
        addresses: List[BlockAddress] = []
        offset = start_offset
        end = self._appended
        while offset < end and len(addresses) < count:
            if not self.is_valid_offset(offset):
                break
            value = self._slots[offset % self.capacity]
            if value is not None:
                addresses.append(value)
            offset += 1
        self.stats.counter("addresses_streamed").increment(len(addresses))
        return addresses

    # ---------------------------------------------------------------- reporting
    @property
    def storage_bytes(self) -> int:
        """Physical storage footprint of the CMOB in bytes."""
        return self.capacity * self.entry_bytes

    def utilization(self) -> float:
        """Fraction of the CMOB currently holding live entries."""
        return len(self) / self.capacity

    def __repr__(self) -> str:
        return (
            f"CMOB(node={self.node_id}, capacity={self.capacity}, "
            f"appended={self._appended})"
        )
