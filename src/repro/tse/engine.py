"""TSE system glue: per-node controllers plus the record / locate / forward protocol.

``NodeTSE`` bundles the per-node hardware the paper adds (CMOB + stream
engine + SVB).  ``TemporalStreamingSystem`` implements the three system-level
capabilities of Section 2:

1. *Recording the order* — consumptions (and useful streamed blocks) are
   appended to the consuming node's CMOB and the new CMOB pointer is sent to
   the block's home directory (Figure 3).
2. *Finding and forwarding streams* — on a consumption, the directory's CMOB
   pointers identify recent consumers; each source node reads the subsequent
   addresses from its CMOB and forwards the address stream to the requester
   (Figure 4).
3. *Streaming data* — the requesting node's stream engine compares the
   candidate streams and retrieves blocks into its SVB with bounded
   lookahead, matching the consumption rate (Section 3.3).

The compare/refill plane is packed end to end: candidate streams are CMOB
window arrays forwarded as-is, fetch requests travel as per-queue batches
(:data:`~repro.tse.stream_engine.FetchBatch`) flattened in order by
:meth:`TemporalStreamingSystem.deliver_all`, and the refill service appends
CMOB windows straight onto the stream-queue FIFOs (one
:meth:`~repro.tse.cmob.CMOB.extend_into` per refill instead of per-address
reads).  Refills are driven by the engine's *eligibility* set — only queues
with a FIFO actually at or below the refill threshold are visited, so the
common consumption pays a single empty-set check.

Message objects are only constructed when a message sink is attached
(traffic accounting); the common no-sink path pays nothing for them.
Counters are plain ints published into the ``StatsRegistry`` lazily.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.coherence.directory import Directory, DirectoryEntry
from repro.coherence.messages import CoherenceMessage, MessageType
from repro.common.config import TSEConfig
from repro.common.stats import StatsRegistry, publish_counters
from repro.common.types import BlockAddress, NodeId
from repro.tse.cmob import CMOB
from repro.tse.layout import SLOT_BYTEORDER, SLOT_BYTES, SLOT_SHIFT
from repro.tse.stream_engine import CandidateStream, FetchBatch, StreamEngine
from repro.tse.stream_queue import _COMPACT_THRESHOLD, StreamQueue

# Short aliases of the shared slot layout (repro.tse.layout; RL004).
_SLOT = SLOT_BYTES
_SHIFT = SLOT_SHIFT
_ORDER = SLOT_BYTEORDER

#: What :meth:`TemporalStreamingSystem.on_consumption` returns: the id of the
#: stream queue allocated for the consumption (-1 when no stream was found)
#: and the ``(queue_id, [addresses])`` fetch batches produced in response.
StreamDelivery = Tuple[int, List[FetchBatch]]


class NodeTSE:
    """Per-node TSE hardware: the CMOB and the stream engine (with its SVB)."""

    __slots__ = ("config", "node_id", "cmob", "engine")

    def __init__(self, config: TSEConfig, node_id: NodeId) -> None:
        self.config = config
        self.node_id = node_id
        self.cmob = CMOB(config.cmob_capacity, node_id=node_id,
                         entry_bytes=config.cmob_entry_bytes)
        self.engine = StreamEngine(config, node_id=node_id)

    def record_order(self, address: BlockAddress) -> int:
        """Append a consumption (or useful streamed hit) to the CMOB."""
        return self.cmob.append(address)

    def read_stream(self, start_offset: int, count: int):
        """Serve a stream request against this node's CMOB (packed window)."""
        return self.cmob.read_stream(start_offset, count)


class TemporalStreamingSystem:
    """System-wide TSE: all node controllers plus the directory extension.

    The class is *functional*: it decides which blocks get streamed where and
    emits the corresponding messages, but charges no latency — the timing
    model layers latency on top, and the trace-driven simulator uses it
    directly for coverage/discard studies.
    """

    def __init__(
        self,
        num_nodes: int,
        config: TSEConfig,
        directory: Directory,
        message_sink: Optional[Callable[[CoherenceMessage], None]] = None,
    ) -> None:
        if directory.cmob_pointers_per_block < config.compared_streams:
            # The directory must retain at least as many pointers as the
            # engine wants to compare.
            directory.cmob_pointers_per_block = config.compared_streams
        self.num_nodes = num_nodes
        self.config = config
        self.directory = directory
        self.nodes = [NodeTSE(config, node_id=i) for i in range(num_nodes)]
        #: Direct CMOB references (one attribute hop saved per stream read).
        self._cmobs = [node.cmob for node in self.nodes]
        self._stats = StatsRegistry(prefix="tse")
        self._message_sink = message_sink
        #: System-wide count of SVB entries per block address, maintained by
        #: the system-level entry points (deliver_block / on_svb_hit /
        #: on_write / drain) so writes to blocks no SVB holds — the vast
        #: majority — skip the per-node invalidate loop entirely.
        self._svb_residency: Dict[BlockAddress, int] = {}
        # Hot-path activity counters, published lazily via ``stats``.
        self._n_cmob_appends = 0
        self._n_streams_forwarded = 0
        self._n_no_stream_found = 0
        self._n_svb_hits = 0
        self._n_svb_invalidations = 0
        self._n_refills_serviced = 0
        self._n_blocks_streamed = 0

    @property
    def stats(self) -> StatsRegistry:
        """Statistics registry, synchronized with the plain-int counters on read."""
        return publish_counters(self._stats, {
            "cmob_appends": self._n_cmob_appends,
            "streams_forwarded": self._n_streams_forwarded,
            "no_stream_found": self._n_no_stream_found,
            "svb_hits": self._n_svb_hits,
            "svb_invalidations": self._n_svb_invalidations,
            "refills_serviced": self._n_refills_serviced,
            "blocks_streamed": self._n_blocks_streamed,
        })

    # ------------------------------------------------------------------ helpers
    def _residency_drop(self, address: BlockAddress) -> None:
        residency = self._svb_residency
        count = residency.get(address, 0)
        if count <= 1:
            residency.pop(address, None)
        else:
            residency[address] = count - 1

    def node(self, node_id: NodeId) -> NodeTSE:
        return self.nodes[node_id]

    def svb_probe(self, node_id: NodeId, address: BlockAddress) -> bool:
        """Does the node's SVB currently hold the block? (no side effects)"""
        return self.nodes[node_id].engine.lookup(address) is not None

    # --------------------------------------------------------------- recording
    def _record_and_update_pointer(self, node_id: NodeId, address: BlockAddress) -> int:
        """Record the order and push the CMOB pointer to the home directory.

        One pointer is recorded per consumption and per SVB hit, so the CMOB
        append and the directory pointer-list update are inlined here.

        KEEP IN SYNC: ``on_consumption`` and ``on_svb_hit`` inline this body
        (as they do ``StreamEngine.accept_streams``) on the replay hot path;
        behavioral changes here must be mirrored in both.
        """
        directory = self.directory
        # Inline CMOB.append (one call per consumption/hit).
        cmob = self._cmobs[node_id]
        offset = cmob._appended
        data = cmob._data
        slot = (offset % cmob.capacity) << _SHIFT
        if slot == len(data):
            data += address.to_bytes(_SLOT, _ORDER)
        else:
            data[slot:slot + _SLOT] = address.to_bytes(_SLOT, _ORDER)
        cmob._appended = offset + 1
        entries = directory._entries
        entry = entries.get(address)
        if entry is None:
            entry = DirectoryEntry()
            entries[address] = entry
        pointers = entry.cmob_pointers
        for i in range(len(pointers)):
            if pointers[i][0] == node_id:
                del pointers[i]
                break
        pointers.insert(0, (node_id, offset))
        keep = directory.cmob_pointers_per_block
        if len(pointers) > keep:
            del pointers[keep:]
        directory._n_cmob_pointer_updates += 1
        if self._message_sink is not None:
            home = directory.home_of(address)
            self._message_sink(
                CoherenceMessage(MessageType.CMOB_POINTER_UPDATE, node_id, home, address)
            )
        self._n_cmob_appends += 1
        return offset

    # ------------------------------------------------------------ consumptions
    def on_consumption(self, node_id: NodeId, address: BlockAddress) -> StreamDelivery:
        """A coherent read miss (consumption) occurred at ``node_id``.

        Performs, in order: stall resolution against the miss address,
        stream location through the directory's CMOB pointers, stream
        forwarding from the source CMOBs (one packed window read per
        pointer), stream-queue allocation and the initial block fetches,
        and finally the CMOB append + pointer update for the miss itself.

        Returns ``(queue_id, fetch_batches)``.
        """
        engine = self.nodes[node_id].engine
        sink = self._message_sink
        directory = self.directory
        queue_id = -1

        # (0) The miss may confirm a stalled stream or realign an active one.
        fetches = engine.on_offchip_miss(address)

        # (1) Locate candidate streams via the directory (Figure 4, step 2).
        # Direct slice of the entry's pointer list (read-only) — the public
        # ``cmob_pointers`` accessor copies the whole list first.
        compared = self.config.compared_streams
        dir_entries = directory._entries
        dir_entry = dir_entries.get(address)
        if dir_entry is None:
            pointers = ()
        else:
            pointers = dir_entry.cmob_pointers
            if len(pointers) > compared:
                # Only slice when the directory retains more pointers than
                # the engine compares (pointer-count ablations).
                pointers = pointers[:compared]
        streams: List[CandidateStream] = []
        cmobs = self._cmobs
        if pointers:
            home = directory.home_of(address) if sink is not None else -1
            queue_depth = self.config.queue_depth
            for pointer_node, pointer_offset in pointers:
                # The stream starts *after* the head (its data already came
                # via the baseline coherence reply).  The window is read
                # straight into what becomes the FIFO storage — one packed
                # copy, no per-address reads.
                start = pointer_offset + 1
                window = bytearray()
                count = cmobs[pointer_node].extend_into(window, start, queue_depth)
                if sink is not None:
                    sink(
                        CoherenceMessage(
                            MessageType.STREAM_REQUEST, home, pointer_node, address
                        )
                    )
                if not count:
                    continue
                if sink is not None:
                    sink(
                        CoherenceMessage(
                            MessageType.ADDRESS_STREAM,
                            pointer_node,
                            node_id,
                            address,
                            num_addresses=count,
                        )
                    )
                streams.append((pointer_node, start + count, window))
                self._n_streams_forwarded += 1

        # (2) Hand the streams to the consumer's engine (Figure 4, step 4) —
        # ``accept_streams`` inlined: allocate (reclaiming the LRU victim
        # when all queues are busy), bulk-populate the FIFOs with the packed
        # windows, derive the state once, and fetch the agreed prefix.
        if streams:
            engine._activity_clock += 1
            queues = engine._queues
            engine_config = engine.config
            queue = None
            if len(queues) >= engine_config.stream_queues:
                victim_id = -1
                victim_active = -1
                for qid, victim in queues.items():
                    active = victim.last_active
                    if victim_id < 0 or active < victim_active:
                        victim_id = qid
                        victim_active = active
                queue = queues.pop(victim_id)
                engine.retired_queue_hits.append(queue.total_hits)
                engine._scan_queues.pop(victim_id, None)
                engine._refill_dirty.discard(victim_id)
                engine._n_queue_reclaims += 1
            queue_id = engine._next_queue_id
            if queue is not None:
                queue.reset(queue_id, address, engine_config.stream_lookahead)
            else:
                queue = StreamQueue(queue_id, address, engine_config.stream_lookahead)
            queue.last_active = engine._activity_clock
            queues[queue_id] = queue
            engine._scan_queues[queue_id] = queue
            engine._next_queue_id = queue_id + 1
            engine._n_queue_allocations += 1
            fifo_data = queue._fifo_data
            fifo_pos = queue._fifo_pos
            src_nodes = queue._src_nodes
            src_next = queue._src_next
            refill_pending = queue._refill_pending
            for source_node, next_offset, window in streams:
                fifo_data.append(window)
                fifo_pos.append(0)
                src_nodes.append(source_node)
                src_next.append(next_offset)
                refill_pending.append(False)
            # Fresh-queue state, derived inline: every appended window is
            # non-empty, so the queue is ACTIVE unless two packed heads
            # disagree.
            n_streams = len(streams)
            if n_streams == 1:
                queue.state_code = 0  # STATE_ACTIVE
            elif n_streams == 2:
                queue.state_code = (
                    0 if fifo_data[0][:_SLOT] == fifo_data[1][:_SLOT] else 1  # ACTIVE/STALLED
                )
            else:
                queue._recompute_state()
            engine._n_streams_accepted += n_streams
            batch = engine._fetch_from(queue)
            if batch:
                fetches.append((queue_id, batch))
            # A short window can leave a fresh FIFO at or below the refill
            # threshold even before (or without) any pops — checked inline
            # for the 1/2-FIFO shapes (a fresh queue has no refills pending
            # and real sources throughout).
            threshold8 = engine._refill_threshold8
            if n_streams <= 2:
                if (
                    len(fifo_data[0]) - fifo_pos[0] <= threshold8
                    or (n_streams == 2 and len(fifo_data[1]) - fifo_pos[1] <= threshold8)
                ):
                    engine._refill_dirty.add(queue_id)
            elif queue.needs_refill(engine._refill_threshold):
                engine._refill_dirty.add(queue_id)
        else:
            self._n_no_stream_found += 1

        # (3) Record the miss in the consumer's CMOB and push the pointer to
        # the home directory (Figure 3, steps 3-4) — inlined, reusing the
        # directory entry already looked up in step 1.
        cmob = cmobs[node_id]
        offset = cmob._appended
        data = cmob._data
        slot = (offset % cmob.capacity) << _SHIFT
        if slot == len(data):
            data += address.to_bytes(_SLOT, _ORDER)
        else:
            data[slot:slot + _SLOT] = address.to_bytes(_SLOT, _ORDER)
        cmob._appended = offset + 1
        if dir_entry is None:
            dir_entry = DirectoryEntry()
            dir_entries[address] = dir_entry
        dir_pointers = dir_entry.cmob_pointers
        for i in range(len(dir_pointers)):
            if dir_pointers[i][0] == node_id:
                del dir_pointers[i]
                break
        dir_pointers.insert(0, (node_id, offset))
        keep = directory.cmob_pointers_per_block
        if len(dir_pointers) > keep:
            del dir_pointers[keep:]
        directory._n_cmob_pointer_updates += 1
        if sink is not None:
            sink(
                CoherenceMessage(
                    MessageType.CMOB_POINTER_UPDATE, node_id,
                    directory.home_of(address), address,
                )
            )
        self._n_cmob_appends += 1

        # (4) Service any refills that the new fetches made necessary.
        if engine._refill_dirty:
            refill_fetches = self._service_refills(node_id)
            if refill_fetches:
                fetches.extend(refill_fetches)
        return queue_id, fetches

    # ----------------------------------------------------------------- SVB hits
    def on_svb_hit(self, node_id: NodeId, address: BlockAddress):
        """The processor's access hit in the SVB.

        The entry moves to the L1 (the caller updates cache/protocol state),
        the stream engine retrieves a subsequent block from the same queue,
        and the hit is recorded in the CMOB because it replaces the coherent
        read miss that would have occurred without TSE (Section 3.1).

        Returns ``(entry, follow_on_fetch_batches)``.
        """
        engine = self.nodes[node_id].engine
        # Inline the engine's hit handling (consume entry, credit the queue,
        # extend the stream): the hit path runs once per eliminated miss.
        clock = engine._activity_clock + 1
        engine._activity_clock = clock
        svb = engine.svb
        entry = svb._entries.pop(address, None)
        if entry is None:
            svb._n_misses += 1
            return None, []
        svb._n_hits += 1
        engine._n_svb_hits += 1
        queue = engine._queues.get(entry[1])
        fetches: List[FetchBatch] = []
        if queue is not None:
            if queue.in_flight > 0:
                queue.in_flight -= 1
            queue.total_hits += 1
            queue.last_active = clock
            batch = engine._fetch_from(queue)
            if batch:
                fetches.append((queue.queue_id, batch))
        # Inline residency drop (one SVB entry for this address just left).
        residency = self._svb_residency
        count = residency.get(address, 0)
        if count <= 1:
            residency.pop(address, None)
        else:
            residency[address] = count - 1
        self._n_svb_hits += 1
        # Record the hit in the CMOB and push the pointer home (a hit
        # replaces the miss one-for-one) — ``_record_and_update_pointer``
        # inlined, as in ``on_consumption``.
        directory = self.directory
        cmob = self._cmobs[node_id]
        offset = cmob._appended
        data = cmob._data
        slot = (offset % cmob.capacity) << _SHIFT
        if slot == len(data):
            data += address.to_bytes(_SLOT, _ORDER)
        else:
            data[slot:slot + _SLOT] = address.to_bytes(_SLOT, _ORDER)
        cmob._appended = offset + 1
        dir_entries = directory._entries
        dir_entry = dir_entries.get(address)
        if dir_entry is None:
            dir_entry = DirectoryEntry()
            dir_entries[address] = dir_entry
        dir_pointers = dir_entry.cmob_pointers
        for i in range(len(dir_pointers)):
            if dir_pointers[i][0] == node_id:
                del dir_pointers[i]
                break
        dir_pointers.insert(0, (node_id, offset))
        keep = directory.cmob_pointers_per_block
        if len(dir_pointers) > keep:
            del dir_pointers[keep:]
        directory._n_cmob_pointer_updates += 1
        if self._message_sink is not None:
            self._message_sink(
                CoherenceMessage(
                    MessageType.CMOB_POINTER_UPDATE, node_id,
                    directory.home_of(address), address,
                )
            )
        self._n_cmob_appends += 1
        if engine._refill_dirty:
            refill_fetches = self._service_refills(node_id)
            if refill_fetches:
                fetches.extend(refill_fetches)
        return entry, fetches

    # ------------------------------------------------------------------ writes
    def on_write(self, writer: NodeId, address: BlockAddress) -> int:
        """A write by any node invalidates matching SVB entries system-wide.

        Returns the number of entries invalidated (each is a discard).
        """
        if address not in self._svb_residency:
            return 0
        invalidated = 0
        for node in self.nodes:
            engine = node.engine
            # Cheap membership probe before the full invalidate path.
            if address in engine.svb:
                if engine.on_invalidate(address) is not None:
                    invalidated += 1
                    self._residency_drop(address)
        if invalidated:
            self._n_svb_invalidations += invalidated
        return invalidated

    # ----------------------------------------------------------------- refills
    def _service_refills(self, node_id: NodeId) -> List[FetchBatch]:
        """Serve pending CMOB refill requests for a node's stream queues.

        Collection and servicing are fused per queue: every FIFO's
        eligibility (live, at or below the refill threshold, no request
        outstanding) is snapshotted *before* any of the queue's refills are
        serviced — servicing triggers ``_fetch_from``, which pops from all
        of a comparing queue's FIFOs and could otherwise make a later FIFO
        eligible one pass early.  Queues are visited in allocation order,
        and servicing one queue cannot touch another queue's FIFOs, so the
        fused pass produces the identical refill and fetch order the
        collect-then-serve pipeline had.  Each refill is one batched CMOB
        window append (``extend_into``) straight onto the FIFO — no
        per-address reads, no intermediate request plumbing.  The dirty set
        arrives pre-filtered: the engine only queues *eligible* queues, so
        this runs exactly when there is work.
        """
        engine = self.nodes[node_id].engine
        dirty = engine._refill_dirty
        if not dirty:
            return []
        fetches: List[FetchBatch] = []
        sink = self._message_sink
        cmobs = self._cmobs
        config = self.config
        threshold = config.refill_threshold
        threshold8 = threshold << _SHIFT
        depth = config.queue_depth
        queues = engine._queues
        if len(dirty) == 1:
            # The common shape: exactly the queue the event touched.
            order = tuple(dirty)
        else:
            order = sorted(dirty)
        dirty.clear()
        fetch_from = engine._fetch_from
        for queue_id in order:
            queue = queues.get(queue_id)
            if queue is None or queue.state_code == 2:  # STATE_DRAINED
                continue
            selected = queue._selected
            if selected is not None:
                indices = (selected,)
            else:
                indices = tuple(range(len(queue._fifo_data)))
            pending = queue._refill_pending
            src_nodes = queue._src_nodes
            src_next = queue._src_next
            data = queue._fifo_data
            pos = queue._fifo_pos
            # Collect phase: snapshot this queue's eligible FIFOs.
            eligible = None
            for i in indices:
                if pending[i]:
                    continue
                source_node = src_nodes[i]
                if source_node < 0:
                    continue
                if len(data[i]) - pos[i] > threshold8:
                    continue
                pending[i] = True
                if eligible is None:
                    eligible = [(i, source_node, src_next[i])]
                else:
                    eligible.append((i, source_node, src_next[i]))
            if eligible is None:
                continue
            # Serve phase: one batched CMOB window append per refill.
            for i, source_node, next_offset in eligible:
                fifo = data[i]
                p = pos[i]
                engine._n_refill_requests += 1
                if p > _COMPACT_THRESHOLD:
                    # Shed the consumed prefix before growing the array.
                    del fifo[:p]
                    p = 0
                    pos[i] = 0
                was_live = p < len(fifo)
                count = cmobs[source_node].extend_into(fifo, next_offset, depth)
                if sink is not None:
                    sink(
                        CoherenceMessage(
                            MessageType.STREAM_REQUEST, node_id, source_node, 0
                        )
                    )
                    if count:
                        sink(
                            CoherenceMessage(
                                MessageType.ADDRESS_STREAM,
                                source_node,
                                node_id,
                                0,
                                num_addresses=count,
                            )
                        )
                pending[i] = False
                src_next[i] = next_offset + count
                if not was_live and count:
                    queue._recompute_state()
                # ``_fetch_from`` gated inline: right after an allocation the
                # lookahead is typically exhausted, so most refills have no
                # budget and the call would be a no-op.
                if queue.state_code == 0 and queue.in_flight < queue.lookahead:
                    batch = fetch_from(queue)
                    if batch:
                        fetches.append((queue_id, batch))
                # A short window can leave this FIFO still at or below the
                # threshold: re-queue it for the next event (its pending
                # flag was just cleared above).  Other FIFOs can only have
                # become eligible through ``fetch_from``'s pops, which
                # queue the refill themselves.
                if len(fifo) - pos[i] <= threshold8:
                    dirty.add(queue_id)
                self._n_refills_serviced += 1
        return fetches

    # ----------------------------------------------------------- data streaming
    def deliver_block(
        self,
        node_id: NodeId,
        address: BlockAddress,
        queue_id: int,
        producer: Optional[NodeId] = None,
        fill_time: float = 0.0,
        version: int = 0,
    ) -> Optional[object]:
        """Stream one data block into the consumer's SVB.

        Emits the streamed-data request/reply messages and returns the SVB
        entry displaced by the fill (if any) so the caller can count the
        discard.
        """
        sink = self._message_sink
        if sink is not None:
            home = self.directory.home_of(address)
            source = producer if producer is not None else home
            sink(
                CoherenceMessage(
                    MessageType.STREAMED_DATA_REQUEST, node_id, home, address
                )
            )
            sink(
                CoherenceMessage(
                    MessageType.STREAMED_DATA_REPLY, source, node_id, address
                )
            )
        self._n_blocks_streamed += 1
        engine = self.nodes[node_id].engine
        refreshed = address in engine.svb._entries
        victim = engine.install_block(
            address, queue_id, fill_time=fill_time, version=version
        )
        if not refreshed:
            self._svb_residency[address] = self._svb_residency.get(address, 0) + 1
        if victim is not None:
            self._residency_drop(victim[0])
        return victim

    def deliver_all(
        self,
        node_id: NodeId,
        batches: List[FetchBatch],
        fill_time: float,
        blocks_map: Dict,
    ) -> Tuple[int, int]:
        """Deliver the fetched block batches into ``node_id``'s SVB.

        Batch counterpart of :meth:`deliver_block`: one call per replay
        event instead of one per block, consuming the engine's per-queue
        ``(queue_id, [addresses])`` batches in order, with the SVB fill, LRU
        eviction, residency bookkeeping and victim notification inlined on
        the message-free path.  ``blocks_map`` is the protocol's per-block
        state dict (for the stored block version).  Returns
        ``(delivered, discarded)``.
        """
        if self._message_sink is not None:
            delivered = 0
            discarded = 0
            for queue_id, addresses in batches:
                for address in addresses:
                    block_state = blocks_map.get(address)
                    if block_state is None:
                        producer, version = None, 0
                    else:
                        producer, version = block_state.last_writer, block_state.version
                    victim = self.deliver_block(
                        node_id, address, queue_id,
                        producer=producer, version=version, fill_time=fill_time,
                    )
                    delivered += 1
                    if victim is not None:
                        discarded += 1
            return delivered, discarded

        engine = self.nodes[node_id].engine
        svb = engine.svb
        entries = svb._entries
        capacity = svb.capacity
        residency = self._svb_residency
        queues = engine._queues
        delivered = 0
        discarded = 0
        for queue_id, addresses in batches:
            delivered += len(addresses)
            for address in addresses:
                # The stored block version is message-path bookkeeping (the
                # streamed-data reply's payload identity); the fast path
                # records 0 — nothing in the replay reads it back.
                if address in entries:
                    # Refresh: new LRU position and queue binding, no victim,
                    # no residency change (plain dicts keep insertion order).
                    del entries[address]
                    entries[address] = (address, queue_id, fill_time, 0)
                    continue
                if len(entries) >= capacity:
                    lru_address = next(iter(entries))
                    victim = entries.pop(lru_address)
                    svb._n_evictions += 1
                    owner = queues.get(victim[1])
                    if owner is not None:
                        owner.on_block_lost()
                    victim_address = victim[0]
                    count = residency.get(victim_address, 0)
                    if count <= 1:
                        residency.pop(victim_address, None)
                    else:
                        residency[victim_address] = count - 1
                    discarded += 1
                entries[address] = (address, queue_id, fill_time, 0)
                svb._n_fills += 1
                residency[address] = residency.get(address, 0) + 1
        self._n_blocks_streamed += delivered
        return delivered, discarded

    # -------------------------------------------------------------- end of run
    def drain(self) -> Dict[NodeId, int]:
        """Flush every SVB; returns per-node counts of unconsumed (discarded) blocks."""
        leftovers: Dict[NodeId, int] = {}
        for node in self.nodes:
            leftovers[node.node_id] = len(node.engine.drain())
        self._svb_residency.clear()
        return leftovers
