"""TSE system glue: per-node controllers plus the record / locate / forward protocol.

``NodeTSE`` bundles the per-node hardware the paper adds (CMOB + stream
engine + SVB).  ``TemporalStreamingSystem`` implements the three system-level
capabilities of Section 2:

1. *Recording the order* — consumptions (and useful streamed blocks) are
   appended to the consuming node's CMOB and the new CMOB pointer is sent to
   the block's home directory (Figure 3).
2. *Finding and forwarding streams* — on a consumption, the directory's CMOB
   pointers identify recent consumers; each source node reads the subsequent
   addresses from its CMOB and forwards the address stream to the requester
   (Figure 4).
3. *Streaming data* — the requesting node's stream engine compares the
   candidate streams and retrieves blocks into its SVB with bounded
   lookahead, matching the consumption rate (Section 3.3).

Message objects are only constructed when a message sink is attached
(traffic accounting); the common no-sink path pays nothing for them.
Counters are plain ints published into the ``StatsRegistry`` lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.config import TSEConfig
from repro.common.stats import StatsRegistry, publish_counters
from repro.common.types import BlockAddress, NodeId
from repro.coherence.directory import Directory
from repro.coherence.messages import CoherenceMessage, MessageType
from repro.tse.cmob import CMOB
from repro.tse.stream_engine import FetchRequest, StreamEngine
from repro.tse.stream_queue import RefillRequest, StreamSource


@dataclass
class StreamDelivery:
    """Everything that happened in response to one consumption."""

    queue_id: int
    fetches: List[FetchRequest] = field(default_factory=list)
    messages: List[CoherenceMessage] = field(default_factory=list)


class NodeTSE:
    """Per-node TSE hardware: the CMOB and the stream engine (with its SVB)."""

    __slots__ = ("config", "node_id", "cmob", "engine")

    def __init__(self, config: TSEConfig, node_id: NodeId) -> None:
        self.config = config
        self.node_id = node_id
        self.cmob = CMOB(config.cmob_capacity, node_id=node_id,
                         entry_bytes=config.cmob_entry_bytes)
        self.engine = StreamEngine(config, node_id=node_id)

    def record_order(self, address: BlockAddress) -> int:
        """Append a consumption (or useful streamed hit) to the CMOB."""
        return self.cmob.append(address)

    def read_stream(self, start_offset: int, count: int) -> List[BlockAddress]:
        """Serve a stream request against this node's CMOB."""
        return self.cmob.read_stream(start_offset, count)


class TemporalStreamingSystem:
    """System-wide TSE: all node controllers plus the directory extension.

    The class is *functional*: it decides which blocks get streamed where and
    emits the corresponding messages, but charges no latency — the timing
    model layers latency on top, and the trace-driven simulator uses it
    directly for coverage/discard studies.
    """

    def __init__(
        self,
        num_nodes: int,
        config: TSEConfig,
        directory: Directory,
        message_sink: Optional[Callable[[CoherenceMessage], None]] = None,
    ) -> None:
        if directory.cmob_pointers_per_block < config.compared_streams:
            # The directory must retain at least as many pointers as the
            # engine wants to compare.
            directory.cmob_pointers_per_block = config.compared_streams
        self.num_nodes = num_nodes
        self.config = config
        self.directory = directory
        self.nodes = [NodeTSE(config, node_id=i) for i in range(num_nodes)]
        self._stats = StatsRegistry(prefix="tse")
        self._message_sink = message_sink
        #: System-wide count of SVB entries per block address, maintained by
        #: the system-level entry points (deliver_block / on_svb_hit /
        #: on_write / drain) so writes to blocks no SVB holds — the vast
        #: majority — skip the per-node invalidate loop entirely.
        self._svb_residency: Dict[BlockAddress, int] = {}
        # Hot-path activity counters, published lazily via ``stats``.
        self._n_cmob_appends = 0
        self._n_streams_forwarded = 0
        self._n_no_stream_found = 0
        self._n_svb_hits = 0
        self._n_svb_invalidations = 0
        self._n_refills_serviced = 0
        self._n_blocks_streamed = 0

    @property
    def stats(self) -> StatsRegistry:
        """Statistics registry, synchronized with the plain-int counters on read."""
        return publish_counters(self._stats, {
            "cmob_appends": self._n_cmob_appends,
            "streams_forwarded": self._n_streams_forwarded,
            "no_stream_found": self._n_no_stream_found,
            "svb_hits": self._n_svb_hits,
            "svb_invalidations": self._n_svb_invalidations,
            "refills_serviced": self._n_refills_serviced,
            "blocks_streamed": self._n_blocks_streamed,
        })

    # ------------------------------------------------------------------ helpers
    def _residency_drop(self, address: BlockAddress) -> None:
        residency = self._svb_residency
        count = residency.get(address, 0)
        if count <= 1:
            residency.pop(address, None)
        else:
            residency[address] = count - 1

    def node(self, node_id: NodeId) -> NodeTSE:
        return self.nodes[node_id]

    def svb_probe(self, node_id: NodeId, address: BlockAddress) -> bool:
        """Does the node's SVB currently hold the block? (no side effects)"""
        return self.nodes[node_id].engine.lookup(address) is not None

    # --------------------------------------------------------------- recording
    def _record_and_update_pointer(self, node_id: NodeId, address: BlockAddress) -> int:
        """Record the order and push the CMOB pointer to the home directory."""
        offset = self.nodes[node_id].record_order(address)
        self.directory.record_cmob_pointer(address, node_id, offset)
        if self._message_sink is not None:
            home = self.directory.home_of(address)
            self._message_sink(
                CoherenceMessage(MessageType.CMOB_POINTER_UPDATE, node_id, home, address)
            )
        self._n_cmob_appends += 1
        return offset

    # ------------------------------------------------------------ consumptions
    def on_consumption(self, node_id: NodeId, address: BlockAddress) -> StreamDelivery:
        """A coherent read miss (consumption) occurred at ``node_id``.

        Performs, in order: stall resolution against the miss address,
        stream location through the directory's CMOB pointers, stream
        forwarding from the source CMOBs, stream-queue allocation and the
        initial block fetches, and finally the CMOB append + pointer update
        for the miss itself.
        """
        engine = self.nodes[node_id].engine
        delivery = StreamDelivery(queue_id=-1)
        sink = self._message_sink

        # (0) The miss may confirm a stalled stream or realign an active one.
        delivery.fetches.extend(engine.on_offchip_miss(address))

        # (1) Locate candidate streams via the directory (Figure 4, step 2).
        pointers = self.directory.cmob_pointers(address)[: self.config.compared_streams]
        streams: List[Tuple[StreamSource, List[BlockAddress]]] = []
        if pointers:
            home = self.directory.home_of(address) if sink is not None else -1
            queue_depth = self.config.queue_depth
            for pointer in pointers:
                source_node = self.nodes[pointer.node]
                # The stream starts *after* the head (its data already came via
                # the baseline coherence reply).
                start = pointer.offset + 1
                addresses = source_node.read_stream(start, queue_depth)
                if sink is not None:
                    sink(
                        CoherenceMessage(
                            MessageType.STREAM_REQUEST, home, pointer.node, address
                        )
                    )
                if not addresses:
                    continue
                if sink is not None:
                    sink(
                        CoherenceMessage(
                            MessageType.ADDRESS_STREAM,
                            pointer.node,
                            node_id,
                            address,
                            num_addresses=len(addresses),
                        )
                    )
                streams.append(
                    (StreamSource(node=pointer.node, next_offset=start + len(addresses)),
                     addresses)
                )
                self._n_streams_forwarded += 1

        # (2) Hand the streams to the consumer's engine (Figure 4, step 4).
        if streams:
            queue_id, fetches = engine.accept_streams(address, streams)
            delivery.queue_id = queue_id
            delivery.fetches.extend(fetches)
        else:
            self._n_no_stream_found += 1

        # (3) Record the miss in the consumer's CMOB (Figure 3, steps 3-4).
        self._record_and_update_pointer(node_id, address)

        # (4) Service any refills that the new fetches made necessary.
        delivery.fetches.extend(self._service_refills(node_id))
        return delivery

    # ----------------------------------------------------------------- SVB hits
    def on_svb_hit(self, node_id: NodeId, address: BlockAddress):
        """The processor's access hit in the SVB.

        The entry moves to the L1 (the caller updates cache/protocol state),
        the stream engine retrieves a subsequent block from the same queue,
        and the hit is recorded in the CMOB because it replaces the coherent
        read miss that would have occurred without TSE (Section 3.1).

        Returns ``(entry, follow_on_fetches)``.
        """
        engine = self.nodes[node_id].engine
        entry, fetches = engine.on_svb_hit(address)
        if entry is None:
            return None, []
        self._residency_drop(address)
        self._n_svb_hits += 1
        self._record_and_update_pointer(node_id, address)
        fetches.extend(self._service_refills(node_id))
        return entry, fetches

    # ------------------------------------------------------------------ writes
    def on_write(self, writer: NodeId, address: BlockAddress) -> int:
        """A write by any node invalidates matching SVB entries system-wide.

        Returns the number of entries invalidated (each is a discard).
        """
        if address not in self._svb_residency:
            return 0
        invalidated = 0
        for node in self.nodes:
            engine = node.engine
            # Cheap membership probe before the full invalidate path.
            if address in engine.svb:
                if engine.on_invalidate(address) is not None:
                    invalidated += 1
                    self._residency_drop(address)
        if invalidated:
            self._n_svb_invalidations += invalidated
        return invalidated

    # ----------------------------------------------------------------- refills
    def _service_refills(self, node_id: NodeId) -> List[FetchRequest]:
        """Serve pending CMOB refill requests for a node's stream queues."""
        engine = self.nodes[node_id].engine
        refills = engine.pending_refills()
        if not refills:
            return []
        fetches: List[FetchRequest] = []
        sink = self._message_sink
        nodes = self.nodes
        for refill in refills:
            source = nodes[refill.source.node]
            addresses = source.read_stream(refill.source.next_offset, refill.count)
            if sink is not None:
                sink(
                    CoherenceMessage(
                        MessageType.STREAM_REQUEST, node_id, refill.source.node, 0
                    )
                )
                if addresses:
                    sink(
                        CoherenceMessage(
                            MessageType.ADDRESS_STREAM,
                            refill.source.node,
                            node_id,
                            0,
                            num_addresses=len(addresses),
                        )
                    )
            new_next = refill.source.next_offset + len(addresses)
            fetches.extend(engine.apply_refill(refill, addresses, new_next))
            self._n_refills_serviced += 1
        return fetches

    # ----------------------------------------------------------- data streaming
    def deliver_block(
        self,
        node_id: NodeId,
        fetch: FetchRequest,
        producer: Optional[NodeId] = None,
        fill_time: float = 0.0,
        version: int = 0,
    ) -> Optional[object]:
        """Stream one data block into the consumer's SVB.

        Emits the streamed-data request/reply messages and returns the SVB
        entry displaced by the fill (if any) so the caller can count the
        discard.
        """
        sink = self._message_sink
        if sink is not None:
            home = self.directory.home_of(fetch.address)
            source = producer if producer is not None else home
            sink(
                CoherenceMessage(
                    MessageType.STREAMED_DATA_REQUEST, node_id, home, fetch.address
                )
            )
            sink(
                CoherenceMessage(
                    MessageType.STREAMED_DATA_REPLY, source, node_id, fetch.address
                )
            )
        self._n_blocks_streamed += 1
        engine = self.nodes[node_id].engine
        address = fetch.address
        refreshed = address in engine.svb
        victim = engine.install_block(
            address, fetch.queue_id, fill_time=fill_time, version=version
        )
        if not refreshed:
            self._svb_residency[address] = self._svb_residency.get(address, 0) + 1
        if victim is not None:
            self._residency_drop(victim.address)
        return victim

    # -------------------------------------------------------------- end of run
    def drain(self) -> Dict[NodeId, int]:
        """Flush every SVB; returns per-node counts of unconsumed (discarded) blocks."""
        leftovers: Dict[NodeId, int] = {}
        for node in self.nodes:
            leftovers[node.node_id] = len(node.engine.drain())
        self._svb_residency.clear()
        return leftovers
