"""Per-node stream engine.

The stream engine owns the node's stream queues and SVB.  It reacts to four
events (Section 3.3):

* an address stream arriving for a recent consumption (allocate a queue,
  start fetching while the FIFO heads agree);
* an SVB hit (retrieve the next block of the corresponding stream);
* an off-chip miss (check stalled queues for a matching FIFO head and resume
  the matching stream);
* a write by any node (invalidate the corresponding SVB entry).

The engine itself is policy only: the system layer (``repro.tse.engine``)
performs the actual block "transfers" and accounts for traffic and latency.

Performance notes: the compare plane is **window-at-a-time** over the packed
byte FIFOs (8 bytes per address, the CMOB window layout):
:meth:`StreamEngine._fetch_from` finds the agreed prefix of the compared
streams with ``memcmp``-class slice equality (a binary search pins the first
divergence index when whole windows disagree), pops it with cursor
arithmetic, unpacks it once (a single ``struct`` call) for the SVB filter,
and emits it as one fetch *batch* ``(queue_id, [addresses])`` (see
:data:`FetchBatch`); single-FIFO and selected queues short-circuit to a
plain slice walk.  Off-chip misses probe active FIFOs with a
``memmem``-class packed substring search (misaligned or already-consumed
matches are false positives that the precise windowed ``skip_address``
rejects), so the common nothing-matches miss never boxes an address.  Every
off-chip miss and refill pass scans the queues, so the engine keeps a *scan
set* holding only queues that can still react — drained queues with no
refill outstanding are zombies (they can never leave ``DRAINED``) and are
pruned from the scan set the first time a pass visits them.  The full
``_queues`` map keeps zombies for LRU reclamation and the stream-length
census.  The refill-dirty set holds only queues whose FIFOs are actually
*eligible* for a refill (``StreamQueue.needs_refill`` checked at each
mutation site), so the system layer's refill service runs only when there is
real work.  Activity counters are plain ints, published into the
``StatsRegistry`` lazily when ``stats`` is read.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.common.config import TSEConfig
from repro.common.stats import StatsRegistry, publish_counters
from repro.common.types import BlockAddress, NodeId
from repro.tse.layout import (
    SLOT_BYTEORDER,
    SLOT_BYTES,
    SLOT_FORMAT,
    SLOT_SHIFT,
    window_format,
)
from repro.tse.stream_queue import (
    STATE_ACTIVE,
    STATE_DRAINED,
    STATE_STALLED,
    QueueState,
    StreamQueue,
    _as_fifo,
)
from repro.tse.svb import StreamedValueBuffer, SVBEntry

# Short aliases of the shared slot layout (repro.tse.layout; RL004): byte
# width of one packed address, its log2 for slot<->byte shifts, byte order.
_SLOT = SLOT_BYTES
_SHIFT = SLOT_SHIFT
_ORDER = SLOT_BYTEORDER

_ACTIVE = QueueState.ACTIVE
_STALLED = QueueState.STALLED

#: A batch of blocks the engine wants streamed into the SVB, all fetched by
#: one queue in one event: ``(queue_id, [address, ...])``.  Batches preserve
#: the exact per-block fetch order of the old per-block tuples; they are
#: flattened in order by the system layer's ``deliver_all``.
FetchBatch = Tuple[int, List[BlockAddress]]

#: One candidate stream handed to :meth:`StreamEngine.accept_streams`:
#: ``(source_node, next_offset, addresses)`` — the CMOB it came from, the
#: monotonic offset of the next address to request on refill, and the
#: forwarded addresses themselves (a packed window or plain iterable).
CandidateStream = Tuple[NodeId, int, object]

#: Single-address unpack for the take==1 fast path (a freed lookahead slot).
_U1 = struct.Struct(SLOT_FORMAT).unpack_from

#: Lazily built ``n``-address unpackers for boxing a whole agreed window in
#: one C call.
_UNPACKERS: Dict[int, object] = {}


def _window_unpacker(n: int):
    unpacker = _UNPACKERS.get(n)
    if unpacker is None:
        unpacker = _UNPACKERS[n] = struct.Struct(window_format(n)).unpack_from
    return unpacker


def _lcp(d0: bytearray, p0: int, d1: bytearray, p1: int, limit: int) -> int:
    """Longest common prefix (in addresses, ``<= limit``) of two packed windows.

    The caller has already established that the full ``limit``-address
    windows are *not* equal, so the divergence index is found by binary
    search over ``memcmp``-class slice comparisons — O(log limit) compares
    instead of a Python loop over elements.
    """
    if d0[p0:p0 + _SLOT] != d1[p1:p1 + _SLOT]:
        return 0
    lo, hi = 1, limit - 1
    while lo < hi:
        mid = (lo + hi + 1) >> 1
        m8 = mid << _SHIFT
        if d0[p0:p0 + m8] == d1[p1:p1 + m8]:
            lo = mid
        else:
            hi = mid - 1
    return lo


class StreamEngine:
    """Manages stream queues and decides which blocks to fetch."""

    def __init__(self, config: TSEConfig, node_id: NodeId = 0) -> None:
        self.config = config
        self.node_id = node_id
        self._stats = StatsRegistry(prefix=f"stream_engine.n{node_id}")
        self.svb = StreamedValueBuffer(config.svb_entries, node_id=node_id)
        self._queues: Dict[int, StreamQueue] = {}
        #: Queues that may still react to misses/refills, in allocation order.
        #: Strict subset of ``_queues``: zombies (drained, no refill pending)
        #: are dropped here but stay in ``_queues`` until reclaimed.
        self._scan_queues: Dict[int, StreamQueue] = {}
        #: Queues with at least one refill-eligible FIFO (low, sourced, no
        #: request outstanding), maintained at every mutation site via
        #: ``StreamQueue.needs_refill``.  The system layer's refill service
        #: drains it in queue-id order.
        self._refill_dirty: set = set()
        self._refill_threshold = config.refill_threshold
        #: Refill threshold in packed bytes (8 per address), for the inline
        #: eligibility checks against byte cursors.
        self._refill_threshold8 = config.refill_threshold << _SHIFT
        self._next_queue_id = 0
        self._activity_clock = 0
        #: Hit counts of queues that have been reclaimed, kept so the
        #: stream-length distribution (Figure 13) covers the whole run.
        self.retired_queue_hits: List[int] = []
        # Hot-path activity counters (see module docstring).
        self._n_queue_reclaims = 0
        self._n_queue_allocations = 0
        self._n_streams_accepted = 0
        self._n_fetch_requests = 0
        self._n_svb_hits = 0
        self._n_stalls_resolved = 0
        self._n_refill_requests = 0

    @property
    def stats(self) -> StatsRegistry:
        """Statistics registry, synchronized with the plain-int counters on read."""
        return publish_counters(self._stats, {
            "queue_reclaims": self._n_queue_reclaims,
            "queue_allocations": self._n_queue_allocations,
            "streams_accepted": self._n_streams_accepted,
            "fetch_requests": self._n_fetch_requests,
            "svb_hits": self._n_svb_hits,
            "stalls_resolved": self._n_stalls_resolved,
            "refill_requests": self._n_refill_requests,
        })

    # ----------------------------------------------------------------- queues
    def _allocate_queue(self, head: BlockAddress) -> StreamQueue:
        """Allocate a stream queue, reclaiming the least-recently-active one
        when all queues are busy (thrashing protection, Section 5.3)."""
        queues = self._queues
        queue: Optional[StreamQueue] = None
        if len(queues) >= self.config.stream_queues:
            victim_id = -1
            victim_active = -1
            for queue_id, victim in queues.items():
                active = victim.last_active
                if victim_id < 0 or active < victim_active:
                    victim_id = queue_id
                    victim_active = active
            queue = queues.pop(victim_id)
            self.retired_queue_hits.append(queue.total_hits)
            self._scan_queues.pop(victim_id, None)
            self._refill_dirty.discard(victim_id)
            self._n_queue_reclaims += 1
        new_id = self._next_queue_id
        if queue is not None:
            # Reuse the reclaimed queue object in place (allocation pooling).
            queue.reset(new_id, head, self.config.stream_lookahead)
        else:
            queue = StreamQueue(new_id, head, self.config.stream_lookahead)
        queue.last_active = self._activity_clock
        queues[new_id] = queue
        self._scan_queues[new_id] = queue
        self._next_queue_id += 1
        self._n_queue_allocations += 1
        return queue

    def queue(self, queue_id: int) -> Optional[StreamQueue]:
        return self._queues.get(queue_id)

    def active_queues(self) -> List[StreamQueue]:
        return [q for q in self._queues.values() if q.state is _ACTIVE]

    def stalled_queues(self) -> List[StreamQueue]:
        return [q for q in self._queues.values() if q.state is _STALLED]

    def _tick(self) -> None:
        self._activity_clock += 1

    # ----------------------------------------------------------------- streams
    def accept_streams(
        self,
        head: BlockAddress,
        streams: List[CandidateStream],
    ) -> Tuple[int, List[BlockAddress]]:
        """A set of candidate streams (one per recent consumer) has arrived.

        Args:
            head: The consumption address the streams follow.
            streams: ``(source_node, next_offset, addresses)`` triples read
                from remote CMOBs (packed windows or plain lists).

        Returns:
            The new queue's id and the initial fetch batch for it (empty
            when the streams disagree immediately or are empty).
        """
        self._activity_clock += 1
        if not streams:
            return -1, []
        queue = self._allocate_queue(head)
        # Bulk-populate the fresh queue: the engine owns the forwarded
        # windows, so they become the FIFO storage directly, and the state
        # is derived once after all FIFOs are in place.
        # KEEP IN SYNC: ``TemporalStreamingSystem.on_consumption`` inlines
        # this whole method (allocation included) on the replay hot path;
        # behavioral changes here must be mirrored there.
        fifo_data = queue._fifo_data
        fifo_pos = queue._fifo_pos
        src_nodes = queue._src_nodes
        src_next = queue._src_next
        refill_pending = queue._refill_pending
        for source_node, next_offset, addresses in streams:
            fifo_data.append(_as_fifo(addresses))
            fifo_pos.append(0)
            src_nodes.append(source_node)
            src_next.append(next_offset)
            refill_pending.append(False)
        queue._recompute_state()
        self._n_streams_accepted += len(streams)
        batch = self._fetch_from(queue)
        # A short window can leave a fresh FIFO at or below the refill
        # threshold even before (or without) any pops.
        if queue.needs_refill(self._refill_threshold):
            self._refill_dirty.add(queue.queue_id)
        return queue.queue_id, batch

    def _fetch_from(self, queue: StreamQueue) -> List[BlockAddress]:
        """Pop the agreed window for a queue and return its fetch batch.

        Window-at-a-time equivalent of repeatedly calling ``pop_next`` until
        the lookahead is reached or the heads stop agreeing: the agreed
        prefix of the compared FIFOs is found with packed-slice comparisons
        (binary-searching the divergence index when a whole window
        disagrees), popped with cursor arithmetic, and filtered against the
        SVB in one pass over a boxed-once window tuple.  Blocks already
        resident in the SVB are popped but not refetched and do not consume
        lookahead — another queue fetched them; refetching would
        double-count traffic.  Selected and single-FIFO queues short-circuit
        to plain slice walks.

        Callers that may have lowered a FIFO level through other means
        (skip-deletes, stall selection) must check ``needs_refill``
        themselves; this method checks it only when it popped something.
        """
        if queue.state_code != STATE_ACTIVE:
            return []
        budget = queue.lookahead - queue.in_flight
        if budget <= 0:
            return []
        svb_entries = self.svb._entries
        data = queue._fifo_data
        pos = queue._fifo_pos
        selected = queue._selected
        batch: List[BlockAddress] = []
        append = batch.append
        popped = 0

        if selected is None and len(data) == 2:
            # The dominant comparing shape: two FIFOs.  Pop the agreed
            # prefix window-by-window while both are live, then continue on
            # the survivor alone.
            d0 = data[0]
            d1 = data[1]
            p0 = pos[0]
            p1 = pos[1]
            n0 = len(d0)
            n1 = len(d1)
            while budget > 0:
                k = (n0 - p0) >> _SHIFT
                k1 = (n1 - p1) >> _SHIFT
                if k1 < k:
                    k = k1
                if k <= 0:
                    break  # at least one FIFO exhausted
                m = k if k < budget else budget
                if m == 1:
                    # Post-hit shape: a single freed lookahead slot.
                    if d0[p0:p0 + _SLOT] != d1[p1:p1 + _SLOT]:
                        break  # heads diverged: stall (derived below)
                    address = _U1(d0, p0)[0]
                    p0 += _SLOT
                    p1 += _SLOT
                    popped += 1
                    if address not in svb_entries:
                        append(address)
                        budget -= 1
                    continue
                m8 = m << _SHIFT
                if d0[p0:p0 + m8] == d1[p1:p1 + m8]:
                    agreed = m
                else:
                    agreed = _lcp(d0, p0, d1, p1, m)
                    if agreed == 0:
                        break  # heads diverged: stall (derived below)
                window = _window_unpacker(agreed)(d0, p0)
                agreed8 = agreed << _SHIFT
                p0 += agreed8
                p1 += agreed8
                popped += agreed
                for address in window:
                    if address not in svb_entries:
                        append(address)
                        budget -= 1
                if agreed < m:
                    break  # divergence inside the window: stall
            if budget > 0 and (p0 >= n0) != (p1 >= n1):
                # Exactly one FIFO exhausted: the survivor streams alone.
                first_live = p0 < n0
                if first_live:
                    d, p, size = d0, p0, n0
                else:
                    d, p, size = d1, p1, n1
                while budget > 0 and p < size:
                    take = (size - p) >> _SHIFT
                    if take > budget:
                        take = budget
                    if take == 1:
                        address = _U1(d, p)[0]
                        p += _SLOT
                        popped += 1
                        if address not in svb_entries:
                            append(address)
                            budget -= 1
                        continue
                    window = _window_unpacker(take)(d, p)
                    p += take << _SHIFT
                    popped += take
                    for address in window:
                        if address not in svb_entries:
                            append(address)
                            budget -= 1
                if first_live:
                    p0 = p
                else:
                    p1 = p
            pos[0] = p0
            pos[1] = p1
            if popped:
                if p0 >= n0 and p1 >= n1:
                    queue.state_code = STATE_DRAINED
                elif p0 >= n0 or p1 >= n1 or d0[p0:p0 + _SLOT] == d1[p1:p1 + _SLOT]:
                    queue.state_code = STATE_ACTIVE
                else:
                    queue.state_code = STATE_STALLED
                queue._stall_heads = None
                queue.total_fetched += popped
                queue.in_flight += len(batch)
                # Inline refill-eligibility check over both FIFOs.
                threshold8 = self._refill_threshold8
                pending = queue._refill_pending
                src_nodes = queue._src_nodes
                if (
                    (not pending[0] and src_nodes[0] >= 0 and n0 - p0 <= threshold8)
                    or (not pending[1] and src_nodes[1] >= 0 and n1 - p1 <= threshold8)
                ):
                    self._refill_dirty.add(queue.queue_id)
            if batch:
                self._n_fetch_requests += len(batch)
            return batch
        if selected is not None or len(data) == 1:
            # One followed FIFO (selected after a stall, or a single
            # candidate stream): the agreed window is a plain slice.
            i = selected if selected is not None else 0
            fifo = data[i]
            p = pos[i]
            size = len(fifo)
            while budget > 0 and p < size:
                take = (size - p) >> _SHIFT
                if take > budget:
                    take = budget
                if take == 1:
                    address = _U1(fifo, p)[0]
                    p += _SLOT
                    popped += 1
                    if address not in svb_entries:
                        append(address)
                        budget -= 1
                    continue
                window = _window_unpacker(take)(fifo, p)
                p += take << _SHIFT
                popped += take
                for address in window:
                    if address not in svb_entries:
                        append(address)
                        budget -= 1
            pos[i] = p
            if p == size:
                queue.state_code = STATE_DRAINED
                queue._stall_heads = None
            if popped:
                queue.total_fetched += popped
                queue.in_flight += len(batch)
                # Inline refill-eligibility check for the one followed FIFO.
                if (
                    not queue._refill_pending[i]
                    and queue._src_nodes[i] >= 0
                    and size - p <= self._refill_threshold8
                ):
                    self._refill_dirty.add(queue.queue_id)
            if batch:
                self._n_fetch_requests += len(batch)
            return batch
        # General comparing case (3+ FIFOs): agreed prefix against the first
        # live FIFO, window-at-a-time, re-deriving the live set whenever the
        # shortest FIFO drains.
        nf = len(data)
        while budget > 0:
            live = [i for i in range(nf) if pos[i] < len(data[i])]
            if not live:
                break
            if len(live) == 1:
                i = live[0]
                fifo = data[i]
                p = pos[i]
                size = len(fifo)
                while budget > 0 and p < size:
                    take = (size - p) >> _SHIFT
                    if take > budget:
                        take = budget
                    window = _window_unpacker(take)(fifo, p)
                    p += take << _SHIFT
                    popped += take
                    for address in window:
                        if address not in svb_entries:
                            append(address)
                            budget -= 1
                pos[i] = p
                break
            i0 = live[0]
            d0 = data[i0]
            p0 = pos[i0]
            k = min((len(data[i]) - pos[i]) >> _SHIFT for i in live)
            m = k if k < budget else budget
            agreed = m
            for i in live[1:]:
                di = data[i]
                pi = pos[i]
                a8 = agreed << _SHIFT
                if d0[p0:p0 + a8] != di[pi:pi + a8]:
                    agreed = _lcp(d0, p0, di, pi, agreed)
                    if agreed == 0:
                        break
            if agreed:
                window = _window_unpacker(agreed)(d0, p0)
                agreed8 = agreed << _SHIFT
                for i in live:
                    pos[i] += agreed8
                popped += agreed
                for address in window:
                    if address not in svb_entries:
                        append(address)
                        budget -= 1
            if agreed < m:
                break  # divergence: stall (derived below)
        if popped:
            queue._recompute_state()

        if popped:
            queue.total_fetched += popped
            queue.in_flight += len(batch)
            if queue.needs_refill(self._refill_threshold):
                self._refill_dirty.add(queue.queue_id)
        if batch:
            self._n_fetch_requests += len(batch)
        return batch

    # --------------------------------------------------------------------- SVB
    def install_block(self, address: BlockAddress, queue_id: int,
                      fill_time: float = 0.0, version: int = 0) -> Optional[SVBEntry]:
        """A streamed block has arrived; place it in the SVB.

        Returns the SVB entry displaced by the fill (a discard), if any.
        """
        victim = self.svb.insert(address, queue_id, fill_time, version)
        if victim is not None:
            owner = self._queues.get(victim[1])
            if owner is not None:
                owner.on_block_lost()
        return victim

    def lookup(self, address: BlockAddress) -> Optional[SVBEntry]:
        """Probe the SVB (no side effects); used by the timing model's L1-miss path."""
        return self.svb.probe(address)

    def on_svb_hit(self, address: BlockAddress) -> Tuple[Optional[SVBEntry], List[FetchBatch]]:
        """The processor hit in the SVB: consume the entry, extend the stream.

        Returns the consumed entry and any follow-on fetch batches for the
        corresponding stream queue.
        """
        clock = self._activity_clock + 1
        self._activity_clock = clock
        entry = self.svb.consume(address)
        if entry is None:
            return None, []
        self._n_svb_hits += 1
        queue = self._queues.get(entry[1])
        if queue is None:
            return entry, []
        queue.on_hit()
        queue.last_active = clock
        batch = self._fetch_from(queue)
        return entry, [(queue.queue_id, batch)] if batch else []

    # ------------------------------------------------------------------ misses
    def on_offchip_miss(self, address: BlockAddress) -> List[FetchBatch]:
        """An off-chip read missed (no SVB hit).

        Stalled queues check the miss address against their FIFO heads; a
        match selects that stream and resumes fetching (Section 3.3).  Active
        queues check whether the miss address sits slightly ahead in their
        pending FIFO entries and drop it to stay aligned.
        """
        self._activity_clock += 1
        batches: List[FetchBatch] = []
        threshold = self._refill_threshold
        dirty = self._refill_dirty
        scan = self._scan_queues
        packed: Optional[bytes] = None
        zombies: Optional[List[StreamQueue]] = None
        for queue in scan.values():
            state = queue.state_code
            if state == STATE_STALLED:
                # A stalled queue's heads cannot change while it is stalled,
                # so the (lazily cached) head tuple is an O(1) reject for the
                # overwhelmingly common no-match case.
                heads = queue._stall_heads
                if heads is None:
                    heads = tuple(queue.heads())
                    queue._stall_heads = heads
                if address in heads and queue._resolve_stall(address):
                    self._n_stalls_resolved += 1
                    queue.last_active = self._activity_clock
                    batch = self._fetch_from(queue)
                    if batch:
                        batches.append((queue.queue_id, batch))
                    # Selecting one FIFO (and dropping the matched head) can
                    # leave it refill-eligible even when nothing was popped.
                    if queue.needs_refill(threshold):
                        dirty.add(queue.queue_id)
            elif state == STATE_ACTIVE:
                # Allocation-light reject: a ``memmem``-class substring probe
                # over each whole packed FIFO over-approximates the windowed
                # search (consumed, beyond-window, or misaligned matches are
                # false positives the precise ``skip_address`` rejects);
                # FIFOs stay short by compaction, so the probe is a few
                # cache lines and never boxes an address.
                if packed is None:
                    packed = address.to_bytes(_SLOT, _ORDER)
                data = queue._fifo_data
                selected = queue._selected
                if selected is not None:
                    probable = packed in data[selected]
                else:
                    probable = False
                    for fifo in data:
                        if packed in fifo:
                            probable = True
                            break
                if probable and queue.skip_address(address):
                    queue.last_active = self._activity_clock
                    batch = self._fetch_from(queue)
                    if batch:
                        batches.append((queue.queue_id, batch))
                    # The skip-delete lowered a FIFO level by one.
                    if queue.needs_refill(threshold):
                        dirty.add(queue.queue_id)
            else:
                # Drained: refills are collected and served synchronously
                # within the event that made them necessary, so a drained
                # queue can never be revived.
                if zombies is None:
                    zombies = [queue]
                else:
                    zombies.append(queue)
        if zombies is not None:
            for queue in zombies:
                # Re-check: a resolved stall above may have revived fetching,
                # but a queue observed DRAINED in this pass cannot have been
                # refilled meanwhile, so dropping it is safe.
                scan.pop(queue.queue_id, None)
        return batches

    # ------------------------------------------------------------- invalidation
    def on_invalidate(self, address: BlockAddress) -> Optional[SVBEntry]:
        """A write (by any node) invalidates the matching SVB entry."""
        entry = self.svb.invalidate(address)
        if entry is not None:
            queue = self._queues.get(entry[1])
            if queue is not None:
                queue.on_block_lost()
        return entry

    # ---------------------------------------------------------------- cleanup
    def drain(self) -> List[SVBEntry]:
        """End of simulation: every unconsumed SVB entry is a discard."""
        return self.svb.drain()

    def stream_length_samples(self) -> List[int]:
        """Realized stream lengths (hits per queue), retired and live queues."""
        live = [q.total_hits for q in self._queues.values()]
        return self.retired_queue_hits + live
