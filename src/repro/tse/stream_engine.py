"""Per-node stream engine.

The stream engine owns the node's stream queues and SVB.  It reacts to four
events (Section 3.3):

* an address stream arriving for a recent consumption (allocate a queue,
  start fetching while the FIFO heads agree);
* an SVB hit (retrieve the next block of the corresponding stream);
* an off-chip miss (check stalled queues for a matching FIFO head and resume
  the matching stream);
* a write by any node (invalidate the corresponding SVB entry).

The engine itself is policy only: the system layer (``repro.tse.engine``)
performs the actual block "transfers" and accounts for traffic and latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.config import TSEConfig
from repro.common.stats import StatsRegistry
from repro.common.types import BlockAddress, NodeId
from repro.tse.stream_queue import QueueState, RefillRequest, StreamQueue, StreamSource
from repro.tse.svb import StreamedValueBuffer, SVBEntry


@dataclass
class FetchRequest:
    """A block the engine wants streamed into the SVB."""

    address: BlockAddress
    queue_id: int


class StreamEngine:
    """Manages stream queues and decides which blocks to fetch."""

    def __init__(self, config: TSEConfig, node_id: NodeId = 0) -> None:
        self.config = config
        self.node_id = node_id
        self.stats = StatsRegistry(prefix=f"stream_engine.n{node_id}")
        self.svb = StreamedValueBuffer(config.svb_entries, node_id=node_id)
        self._queues: Dict[int, StreamQueue] = {}
        self._next_queue_id = 0
        self._activity_clock = 0
        #: Hit counts of queues that have been reclaimed, kept so the
        #: stream-length distribution (Figure 13) covers the whole run.
        self.retired_queue_hits: List[int] = []

    # ----------------------------------------------------------------- queues
    def _allocate_queue(self, head: BlockAddress) -> StreamQueue:
        """Allocate a stream queue, reclaiming the least-recently-active one
        when all queues are busy (thrashing protection, Section 5.3)."""
        if len(self._queues) >= self.config.stream_queues:
            victim_id = min(self._queues, key=lambda q: self._queues[q].last_active)
            self.retired_queue_hits.append(self._queues[victim_id].total_hits)
            del self._queues[victim_id]
            self.stats.counter("queue_reclaims").increment()
        queue = StreamQueue(self._next_queue_id, head, self.config.stream_lookahead)
        queue.last_active = self._activity_clock
        self._queues[queue.queue_id] = queue
        self._next_queue_id += 1
        self.stats.counter("queue_allocations").increment()
        return queue

    def queue(self, queue_id: int) -> Optional[StreamQueue]:
        return self._queues.get(queue_id)

    def active_queues(self) -> List[StreamQueue]:
        return [q for q in self._queues.values() if q.state is QueueState.ACTIVE]

    def stalled_queues(self) -> List[StreamQueue]:
        return [q for q in self._queues.values() if q.state is QueueState.STALLED]

    def _tick(self) -> None:
        self._activity_clock += 1

    # ----------------------------------------------------------------- streams
    def accept_streams(
        self,
        head: BlockAddress,
        streams: List[Tuple[StreamSource, List[BlockAddress]]],
    ) -> Tuple[int, List[FetchRequest]]:
        """A set of candidate streams (one per recent consumer) has arrived.

        Args:
            head: The consumption address the streams follow.
            streams: ``(source, addresses)`` pairs read from remote CMOBs.

        Returns:
            The new queue's id and the initial fetch requests (empty when the
            streams disagree immediately or are empty).
        """
        self._tick()
        if not streams:
            return -1, []
        queue = self._allocate_queue(head)
        for source, addresses in streams:
            queue.add_stream(list(addresses), source)
        self.stats.counter("streams_accepted").increment(len(streams))
        return queue.queue_id, self._fetch_from(queue)

    def _fetch_from(self, queue: StreamQueue) -> List[FetchRequest]:
        """Fetch blocks for a queue while its heads agree and lookahead allows."""
        requests: List[FetchRequest] = []
        while queue.can_fetch():
            address = queue.pop_next()
            if address is None:
                break
            # Skip blocks already waiting in the SVB (another queue fetched
            # them); refetching would double-count traffic for no benefit.
            if self.svb.probe(address) is not None:
                queue.on_block_lost()
                continue
            requests.append(FetchRequest(address=address, queue_id=queue.queue_id))
        if requests:
            self.stats.counter("fetch_requests").increment(len(requests))
        return requests

    # --------------------------------------------------------------------- SVB
    def install_block(self, address: BlockAddress, queue_id: int,
                      fill_time: float = 0.0, version: int = 0) -> Optional[SVBEntry]:
        """A streamed block has arrived; place it in the SVB.

        Returns the SVB entry displaced by the fill (a discard), if any.
        """
        victim = self.svb.insert(
            SVBEntry(address=address, queue_id=queue_id, fill_time=fill_time, version=version)
        )
        if victim is not None:
            owner = self._queues.get(victim.queue_id)
            if owner is not None:
                owner.on_block_lost()
        return victim

    def lookup(self, address: BlockAddress) -> Optional[SVBEntry]:
        """Probe the SVB (no side effects); used by the timing model's L1-miss path."""
        return self.svb.probe(address)

    def on_svb_hit(self, address: BlockAddress) -> Tuple[Optional[SVBEntry], List[FetchRequest]]:
        """The processor hit in the SVB: consume the entry, extend the stream.

        Returns the consumed entry and any follow-on fetch requests for the
        corresponding stream queue.
        """
        self._tick()
        entry = self.svb.consume(address)
        if entry is None:
            return None, []
        self.stats.counter("svb_hits").increment()
        queue = self._queues.get(entry.queue_id)
        if queue is None:
            return entry, []
        queue.on_hit()
        queue.last_active = self._activity_clock
        return entry, self._fetch_from(queue)

    # ------------------------------------------------------------------ misses
    def on_offchip_miss(self, address: BlockAddress) -> List[FetchRequest]:
        """An off-chip read missed (no SVB hit).

        Stalled queues check the miss address against their FIFO heads; a
        match selects that stream and resumes fetching (Section 3.3).  Active
        queues check whether the miss address sits slightly ahead in their
        pending FIFO entries and drop it to stay aligned.
        """
        self._tick()
        requests: List[FetchRequest] = []
        for queue in list(self._queues.values()):
            if queue.state is QueueState.STALLED:
                if queue.try_resolve_stall(address):
                    self.stats.counter("stalls_resolved").increment()
                    queue.last_active = self._activity_clock
                    requests.extend(self._fetch_from(queue))
            elif queue.state is QueueState.ACTIVE:
                if queue.skip_address(address):
                    queue.last_active = self._activity_clock
                    requests.extend(self._fetch_from(queue))
        return requests

    # ------------------------------------------------------------- invalidation
    def on_invalidate(self, address: BlockAddress) -> Optional[SVBEntry]:
        """A write (by any node) invalidates the matching SVB entry."""
        entry = self.svb.invalidate(address)
        if entry is not None:
            queue = self._queues.get(entry.queue_id)
            if queue is not None:
                queue.on_block_lost()
        return entry

    # ---------------------------------------------------------------- refills
    def pending_refills(self) -> List[RefillRequest]:
        """Collect refill requests from live queues running low on addresses."""
        requests: List[RefillRequest] = []
        for queue in self._queues.values():
            if queue.state is QueueState.DRAINED:
                continue
            requests.extend(
                queue.refill_requests(self.config.refill_threshold, self.config.queue_depth)
            )
        if requests:
            self.stats.counter("refill_requests").increment(len(requests))
        return requests

    def apply_refill(self, refill: RefillRequest, addresses: List[BlockAddress],
                     new_next_offset: int) -> List[FetchRequest]:
        """Deliver refill addresses to the requesting FIFO and resume fetching."""
        queue = self._queues.get(refill.queue_id)
        if queue is None:
            return []
        queue.extend_stream(refill.fifo_index, addresses, new_next_offset)
        return self._fetch_from(queue)

    # ---------------------------------------------------------------- cleanup
    def drain(self) -> List[SVBEntry]:
        """End of simulation: every unconsumed SVB entry is a discard."""
        return self.svb.drain()

    def stream_length_samples(self) -> List[int]:
        """Realized stream lengths (hits per queue), retired and live queues."""
        live = [q.total_hits for q in self._queues.values()]
        return self.retired_queue_hits + live
