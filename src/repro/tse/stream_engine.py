"""Per-node stream engine.

The stream engine owns the node's stream queues and SVB.  It reacts to four
events (Section 3.3):

* an address stream arriving for a recent consumption (allocate a queue,
  start fetching while the FIFO heads agree);
* an SVB hit (retrieve the next block of the corresponding stream);
* an off-chip miss (check stalled queues for a matching FIFO head and resume
  the matching stream);
* a write by any node (invalidate the corresponding SVB entry).

The engine itself is policy only: the system layer (``repro.tse.engine``)
performs the actual block "transfers" and accounts for traffic and latency.

Performance notes: every off-chip miss and refill pass scans the queues, so
the engine keeps a *scan set* holding only queues that can still react —
drained queues with no refill outstanding are zombies (they can never leave
``DRAINED``) and are pruned from the scan set the first time a pass visits
them.  The full ``_queues`` map keeps zombies for LRU reclamation and the
stream-length census.  Activity counters are plain ints, published into the
``StatsRegistry`` lazily when ``stats`` is read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.config import TSEConfig
from repro.common.stats import StatsRegistry, publish_counters
from repro.common.types import BlockAddress, NodeId
from repro.tse.stream_queue import QueueState, RefillRequest, StreamQueue, StreamSource
from repro.tse.svb import StreamedValueBuffer, SVBEntry

_ACTIVE = QueueState.ACTIVE
_STALLED = QueueState.STALLED
_DRAINED = QueueState.DRAINED


@dataclass(slots=True)
class FetchRequest:
    """A block the engine wants streamed into the SVB."""

    address: BlockAddress
    queue_id: int


class StreamEngine:
    """Manages stream queues and decides which blocks to fetch."""

    def __init__(self, config: TSEConfig, node_id: NodeId = 0) -> None:
        self.config = config
        self.node_id = node_id
        self._stats = StatsRegistry(prefix=f"stream_engine.n{node_id}")
        self.svb = StreamedValueBuffer(config.svb_entries, node_id=node_id)
        self._queues: Dict[int, StreamQueue] = {}
        #: Queues that may still react to misses/refills, in allocation order.
        #: Strict subset of ``_queues``: zombies (drained, no refill pending)
        #: are dropped here but stay in ``_queues`` until reclaimed.
        self._scan_queues: Dict[int, StreamQueue] = {}
        #: Per-queue count of issued-but-unserviced refill requests; a drained
        #: queue with none outstanding can never be revived.
        self._refills_outstanding: Dict[int, int] = {}
        #: Queues whose FIFOs changed since the last refill scan.  Only these
        #: can produce new refill requests: an unchanged queue was already
        #: scanned right after the event that made it eligible.
        self._refill_dirty: set = set()
        self._next_queue_id = 0
        self._activity_clock = 0
        #: Hit counts of queues that have been reclaimed, kept so the
        #: stream-length distribution (Figure 13) covers the whole run.
        self.retired_queue_hits: List[int] = []
        # Hot-path activity counters (see module docstring).
        self._n_queue_reclaims = 0
        self._n_queue_allocations = 0
        self._n_streams_accepted = 0
        self._n_fetch_requests = 0
        self._n_svb_hits = 0
        self._n_stalls_resolved = 0
        self._n_refill_requests = 0

    @property
    def stats(self) -> StatsRegistry:
        """Statistics registry, synchronized with the plain-int counters on read."""
        return publish_counters(self._stats, {
            "queue_reclaims": self._n_queue_reclaims,
            "queue_allocations": self._n_queue_allocations,
            "streams_accepted": self._n_streams_accepted,
            "fetch_requests": self._n_fetch_requests,
            "svb_hits": self._n_svb_hits,
            "stalls_resolved": self._n_stalls_resolved,
            "refill_requests": self._n_refill_requests,
        })

    # ----------------------------------------------------------------- queues
    def _allocate_queue(self, head: BlockAddress) -> StreamQueue:
        """Allocate a stream queue, reclaiming the least-recently-active one
        when all queues are busy (thrashing protection, Section 5.3)."""
        queues = self._queues
        if len(queues) >= self.config.stream_queues:
            victim_id = min(queues, key=lambda q: queues[q].last_active)
            self.retired_queue_hits.append(queues[victim_id].total_hits)
            del queues[victim_id]
            self._scan_queues.pop(victim_id, None)
            self._refills_outstanding.pop(victim_id, None)
            self._refill_dirty.discard(victim_id)
            self._n_queue_reclaims += 1
        queue = StreamQueue(self._next_queue_id, head, self.config.stream_lookahead)
        queue.last_active = self._activity_clock
        queues[queue.queue_id] = queue
        self._scan_queues[queue.queue_id] = queue
        self._refills_outstanding[queue.queue_id] = 0
        self._refill_dirty.add(queue.queue_id)
        self._next_queue_id += 1
        self._n_queue_allocations += 1
        return queue

    def queue(self, queue_id: int) -> Optional[StreamQueue]:
        return self._queues.get(queue_id)

    def active_queues(self) -> List[StreamQueue]:
        return [q for q in self._queues.values() if q.state is _ACTIVE]

    def stalled_queues(self) -> List[StreamQueue]:
        return [q for q in self._queues.values() if q.state is _STALLED]

    def _tick(self) -> None:
        self._activity_clock += 1

    # ----------------------------------------------------------------- streams
    def accept_streams(
        self,
        head: BlockAddress,
        streams: List[Tuple[StreamSource, List[BlockAddress]]],
    ) -> Tuple[int, List[FetchRequest]]:
        """A set of candidate streams (one per recent consumer) has arrived.

        Args:
            head: The consumption address the streams follow.
            streams: ``(source, addresses)`` pairs read from remote CMOBs.

        Returns:
            The new queue's id and the initial fetch requests (empty when the
            streams disagree immediately or are empty).
        """
        self._tick()
        if not streams:
            return -1, []
        queue = self._allocate_queue(head)
        for source, addresses in streams:
            queue.add_stream(list(addresses), source)
        self._n_streams_accepted += len(streams)
        return queue.queue_id, self._fetch_from(queue)

    def _fetch_from(self, queue: StreamQueue) -> List[FetchRequest]:
        """Fetch blocks for a queue while its heads agree and lookahead allows."""
        requests: List[FetchRequest] = []
        svb_probe = self.svb.probe
        queue_id = queue.queue_id
        popped = False
        while queue.can_fetch():
            address = queue.pop_next()
            if address is None:
                break
            popped = True
            # Skip blocks already waiting in the SVB (another queue fetched
            # them); refetching would double-count traffic for no benefit.
            if svb_probe(address) is not None:
                queue.on_block_lost()
                continue
            requests.append(FetchRequest(address=address, queue_id=queue_id))
        if popped:
            self._refill_dirty.add(queue_id)
        if requests:
            self._n_fetch_requests += len(requests)
        return requests

    # --------------------------------------------------------------------- SVB
    def install_block(self, address: BlockAddress, queue_id: int,
                      fill_time: float = 0.0, version: int = 0) -> Optional[SVBEntry]:
        """A streamed block has arrived; place it in the SVB.

        Returns the SVB entry displaced by the fill (a discard), if any.
        """
        victim = self.svb.insert(
            SVBEntry(address=address, queue_id=queue_id, fill_time=fill_time, version=version)
        )
        if victim is not None:
            owner = self._queues.get(victim.queue_id)
            if owner is not None:
                owner.on_block_lost()
        return victim

    def lookup(self, address: BlockAddress) -> Optional[SVBEntry]:
        """Probe the SVB (no side effects); used by the timing model's L1-miss path."""
        return self.svb.probe(address)

    def on_svb_hit(self, address: BlockAddress) -> Tuple[Optional[SVBEntry], List[FetchRequest]]:
        """The processor hit in the SVB: consume the entry, extend the stream.

        Returns the consumed entry and any follow-on fetch requests for the
        corresponding stream queue.
        """
        self._tick()
        entry = self.svb.consume(address)
        if entry is None:
            return None, []
        self._n_svb_hits += 1
        queue = self._queues.get(entry.queue_id)
        if queue is None:
            return entry, []
        queue.on_hit()
        queue.last_active = self._activity_clock
        return entry, self._fetch_from(queue)

    # ------------------------------------------------------------------ misses
    def on_offchip_miss(self, address: BlockAddress) -> List[FetchRequest]:
        """An off-chip read missed (no SVB hit).

        Stalled queues check the miss address against their FIFO heads; a
        match selects that stream and resumes fetching (Section 3.3).  Active
        queues check whether the miss address sits slightly ahead in their
        pending FIFO entries and drop it to stay aligned.
        """
        self._tick()
        requests: List[FetchRequest] = []
        scan = self._scan_queues
        zombies: Optional[List[StreamQueue]] = None
        for queue in scan.values():
            state = queue.state
            if state is _STALLED:
                if queue._resolve_stall(address):
                    self._n_stalls_resolved += 1
                    queue.last_active = self._activity_clock
                    self._refill_dirty.add(queue.queue_id)
                    requests.extend(self._fetch_from(queue))
            elif state is _ACTIVE:
                if queue.skip_address(address):
                    queue.last_active = self._activity_clock
                    self._refill_dirty.add(queue.queue_id)
                    requests.extend(self._fetch_from(queue))
            elif not self._refills_outstanding.get(queue.queue_id):
                # Drained with no refill in flight: can never react again.
                if zombies is None:
                    zombies = [queue]
                else:
                    zombies.append(queue)
        if zombies is not None:
            for queue in zombies:
                # Re-check: a resolved stall above may have revived fetching,
                # but a queue observed DRAINED in this pass cannot have been
                # refilled meanwhile, so dropping it is safe.
                scan.pop(queue.queue_id, None)
        return requests

    # ------------------------------------------------------------- invalidation
    def on_invalidate(self, address: BlockAddress) -> Optional[SVBEntry]:
        """A write (by any node) invalidates the matching SVB entry."""
        entry = self.svb.invalidate(address)
        if entry is not None:
            queue = self._queues.get(entry.queue_id)
            if queue is not None:
                queue.on_block_lost()
        return entry

    # ---------------------------------------------------------------- refills
    def pending_refills(self) -> List[RefillRequest]:
        """Collect refill requests from live queues running low on addresses.

        Only queues marked dirty since the last scan are visited: any queue
        whose FIFOs have not changed was already scanned right after the
        event that last made it eligible, so it cannot produce new requests.
        Dirty queues are visited in allocation (queue-id) order, matching a
        full scan's iteration order.
        """
        dirty = self._refill_dirty
        if not dirty:
            return []
        requests: List[RefillRequest] = []
        threshold = self.config.refill_threshold
        depth = self.config.queue_depth
        refills_outstanding = self._refills_outstanding
        queues = self._queues
        for queue_id in sorted(dirty):
            queue = queues.get(queue_id)
            if queue is None or queue.state is _DRAINED:
                continue
            new_requests = queue.refill_requests(threshold, depth)
            if new_requests:
                refills_outstanding[queue_id] = (
                    refills_outstanding.get(queue_id, 0) + len(new_requests)
                )
                requests.extend(new_requests)
        dirty.clear()
        if requests:
            self._n_refill_requests += len(requests)
        return requests

    def apply_refill(self, refill: RefillRequest, addresses: List[BlockAddress],
                     new_next_offset: int) -> List[FetchRequest]:
        """Deliver refill addresses to the requesting FIFO and resume fetching."""
        queue = self._queues.get(refill.queue_id)
        if queue is None:
            return []
        outstanding = self._refills_outstanding.get(refill.queue_id, 0)
        if outstanding > 0:
            self._refills_outstanding[refill.queue_id] = outstanding - 1
        queue.extend_stream(refill.fifo_index, addresses, new_next_offset)
        self._refill_dirty.add(refill.queue_id)
        return self._fetch_from(queue)

    # ---------------------------------------------------------------- cleanup
    def drain(self) -> List[SVBEntry]:
        """End of simulation: every unconsumed SVB entry is a discard."""
        return self.svb.drain()

    def stream_length_samples(self) -> List[int]:
        """Realized stream lengths (hits per queue), retired and live queues."""
        live = [q.total_hits for q in self._queues.values()]
        return self.retired_queue_hits + live
