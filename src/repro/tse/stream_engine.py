"""Per-node stream engine.

The stream engine owns the node's stream queues and SVB.  It reacts to four
events (Section 3.3):

* an address stream arriving for a recent consumption (allocate a queue,
  start fetching while the FIFO heads agree);
* an SVB hit (retrieve the next block of the corresponding stream);
* an off-chip miss (check stalled queues for a matching FIFO head and resume
  the matching stream);
* a write by any node (invalidate the corresponding SVB entry).

The engine itself is policy only: the system layer (``repro.tse.engine``)
performs the actual block "transfers" and accounts for traffic and latency.

Performance notes: every off-chip miss and refill pass scans the queues, so
the engine keeps a *scan set* holding only queues that can still react —
drained queues with no refill outstanding are zombies (they can never leave
``DRAINED``) and are pruned from the scan set the first time a pass visits
them.  The full ``_queues`` map keeps zombies for LRU reclamation and the
stream-length census.  Fetch requests are plain ``(address, queue_id)``
tuples (see :data:`FetchRequest`) and refill requests are the stream queue's
flat tuples — no per-event object allocation.  Activity counters are plain
ints, published into the ``StatsRegistry`` lazily when ``stats`` is read.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.config import TSEConfig
from repro.common.stats import StatsRegistry, publish_counters
from repro.common.types import BlockAddress, NodeId
from repro.tse.stream_queue import (
    STATE_ACTIVE,
    STATE_DRAINED,
    STATE_STALLED,
    QueueState,
    StreamQueue,
)
from repro.tse.svb import StreamedValueBuffer, SVBEntry

_ACTIVE = QueueState.ACTIVE
_STALLED = QueueState.STALLED

#: A block the engine wants streamed into the SVB: ``(address, queue_id)``.
FetchRequest = Tuple[BlockAddress, int]

#: One candidate stream handed to :meth:`StreamEngine.accept_streams`:
#: ``(source_node, next_offset, addresses)`` — the CMOB it came from, the
#: monotonic offset of the next address to request on refill, and the
#: forwarded addresses themselves.
CandidateStream = Tuple[NodeId, int, List[BlockAddress]]


class StreamEngine:
    """Manages stream queues and decides which blocks to fetch."""

    def __init__(self, config: TSEConfig, node_id: NodeId = 0) -> None:
        self.config = config
        self.node_id = node_id
        self._stats = StatsRegistry(prefix=f"stream_engine.n{node_id}")
        self.svb = StreamedValueBuffer(config.svb_entries, node_id=node_id)
        self._queues: Dict[int, StreamQueue] = {}
        #: Queues that may still react to misses/refills, in allocation order.
        #: Strict subset of ``_queues``: zombies (drained, no refill pending)
        #: are dropped here but stay in ``_queues`` until reclaimed.
        self._scan_queues: Dict[int, StreamQueue] = {}
        #: Queues whose FIFOs changed since the last refill scan.  Only these
        #: can produce new refill requests: an unchanged queue was already
        #: scanned right after the event that made it eligible.
        self._refill_dirty: set = set()
        self._next_queue_id = 0
        self._activity_clock = 0
        #: Hit counts of queues that have been reclaimed, kept so the
        #: stream-length distribution (Figure 13) covers the whole run.
        self.retired_queue_hits: List[int] = []
        # Hot-path activity counters (see module docstring).
        self._n_queue_reclaims = 0
        self._n_queue_allocations = 0
        self._n_streams_accepted = 0
        self._n_fetch_requests = 0
        self._n_svb_hits = 0
        self._n_stalls_resolved = 0
        self._n_refill_requests = 0

    @property
    def stats(self) -> StatsRegistry:
        """Statistics registry, synchronized with the plain-int counters on read."""
        return publish_counters(self._stats, {
            "queue_reclaims": self._n_queue_reclaims,
            "queue_allocations": self._n_queue_allocations,
            "streams_accepted": self._n_streams_accepted,
            "fetch_requests": self._n_fetch_requests,
            "svb_hits": self._n_svb_hits,
            "stalls_resolved": self._n_stalls_resolved,
            "refill_requests": self._n_refill_requests,
        })

    # ----------------------------------------------------------------- queues
    def _allocate_queue(self, head: BlockAddress) -> StreamQueue:
        """Allocate a stream queue, reclaiming the least-recently-active one
        when all queues are busy (thrashing protection, Section 5.3)."""
        queues = self._queues
        queue: Optional[StreamQueue] = None
        if len(queues) >= self.config.stream_queues:
            victim_id = -1
            victim_active = -1
            for queue_id, victim in queues.items():
                active = victim.last_active
                if victim_id < 0 or active < victim_active:
                    victim_id = queue_id
                    victim_active = active
            queue = queues.pop(victim_id)
            self.retired_queue_hits.append(queue.total_hits)
            self._scan_queues.pop(victim_id, None)
            self._refill_dirty.discard(victim_id)
            self._n_queue_reclaims += 1
        new_id = self._next_queue_id
        if queue is not None:
            # Reuse the reclaimed queue object in place (allocation pooling).
            queue.reset(new_id, head, self.config.stream_lookahead)
        else:
            queue = StreamQueue(new_id, head, self.config.stream_lookahead)
        queue.last_active = self._activity_clock
        queues[new_id] = queue
        self._scan_queues[new_id] = queue
        self._refill_dirty.add(new_id)
        self._next_queue_id += 1
        self._n_queue_allocations += 1
        return queue

    def queue(self, queue_id: int) -> Optional[StreamQueue]:
        return self._queues.get(queue_id)

    def active_queues(self) -> List[StreamQueue]:
        return [q for q in self._queues.values() if q.state is _ACTIVE]

    def stalled_queues(self) -> List[StreamQueue]:
        return [q for q in self._queues.values() if q.state is _STALLED]

    def _tick(self) -> None:
        self._activity_clock += 1

    # ----------------------------------------------------------------- streams
    def accept_streams(
        self,
        head: BlockAddress,
        streams: List[CandidateStream],
    ) -> Tuple[int, List[FetchRequest]]:
        """A set of candidate streams (one per recent consumer) has arrived.

        Args:
            head: The consumption address the streams follow.
            streams: ``(source_node, next_offset, addresses)`` triples read
                from remote CMOBs.

        Returns:
            The new queue's id and the initial fetch requests (empty when the
            streams disagree immediately or are empty).
        """
        self._activity_clock += 1
        if not streams:
            return -1, []
        queue = self._allocate_queue(head)
        # Bulk-populate the fresh queue: the engine owns the forwarded
        # address lists (CMOB stream reads return fresh slices), so they
        # become the FIFO storage directly, and the state is derived once
        # after all FIFOs are in place.
        fifo_data = queue._fifo_data
        fifo_pos = queue._fifo_pos
        src_nodes = queue._src_nodes
        src_next = queue._src_next
        refill_pending = queue._refill_pending
        for source_node, next_offset, addresses in streams:
            fifo_data.append(addresses)
            fifo_pos.append(0)
            src_nodes.append(source_node)
            src_next.append(next_offset)
            refill_pending.append(False)
        queue._recompute_state()
        self._n_streams_accepted += len(streams)
        return queue.queue_id, self._fetch_from(queue)

    def _fetch_from(self, queue: StreamQueue) -> List[FetchRequest]:
        """Fetch blocks for a queue while its heads agree and lookahead allows.

        Equivalent to repeatedly calling ``pop_next`` until the lookahead is
        reached or the heads stop agreeing (blocks already resident in the
        SVB are popped but not refetched and do not consume lookahead —
        another queue fetched them; refetching would double-count traffic).
        The two dominant shapes are specialized: a *selected* queue pops a
        plain prefix of one FIFO, and a fresh/agreeing *two-FIFO* queue pops
        the common prefix — both derive the queue state once at the end
        instead of once per popped block.
        """
        if queue.state_code != STATE_ACTIVE:
            return []
        budget = queue.lookahead - queue.in_flight
        if budget <= 0:
            return []
        requests: List[FetchRequest] = []
        svb_entries = self.svb._entries
        queue_id = queue.queue_id
        data = queue._fifo_data
        pos = queue._fifo_pos
        selected = queue._selected
        popped = 0
        if selected is not None:
            fifo = data[selected]
            p = pos[selected]
            size = len(fifo)
            while budget > 0 and p < size:
                address = fifo[p]
                p += 1
                popped += 1
                if address in svb_entries:
                    continue
                requests.append((address, queue_id))
                budget -= 1
            pos[selected] = p
            if p == size:
                queue.state_code = STATE_DRAINED
                queue._stall_heads = None
        elif len(data) == 2:
            d0 = data[0]
            d1 = data[1]
            p0 = pos[0]
            p1 = pos[1]
            n0 = len(d0)
            n1 = len(d1)
            while budget > 0:
                h0 = d0[p0] if p0 < n0 else None
                h1 = d1[p1] if p1 < n1 else None
                if h0 == h1:
                    if h0 is None:
                        break  # both exhausted
                    address = h0
                    p0 += 1
                    p1 += 1
                elif h0 is None:
                    address = h1
                    p1 += 1
                elif h1 is None:
                    address = h0
                    p0 += 1
                else:
                    break  # heads disagree: stall
                popped += 1
                if address in svb_entries:
                    continue
                requests.append((address, queue_id))
                budget -= 1
            pos[0] = p0
            pos[1] = p1
            if popped:
                h0 = d0[p0] if p0 < n0 else None
                h1 = d1[p1] if p1 < n1 else None
                if h0 is None and h1 is None:
                    queue.state_code = STATE_DRAINED
                elif h0 is None or h1 is None or h0 == h1:
                    queue.state_code = STATE_ACTIVE
                else:
                    queue.state_code = STATE_STALLED
                queue._stall_heads = None
        else:
            # General comparing case (1 or 3+ FIFOs): per-block pops.
            while budget > 0:
                address = queue.pop_next()
                if address is None:
                    break
                popped += 1
                queue.in_flight -= 1  # re-accounted below, like the fast paths
                queue.total_fetched -= 1
                if address in svb_entries:
                    continue
                requests.append((address, queue_id))
                budget -= 1
        if popped:
            queue.total_fetched += popped
            queue.in_flight += len(requests)
            self._refill_dirty.add(queue_id)
        if requests:
            self._n_fetch_requests += len(requests)
        return requests

    # --------------------------------------------------------------------- SVB
    def install_block(self, address: BlockAddress, queue_id: int,
                      fill_time: float = 0.0, version: int = 0) -> Optional[SVBEntry]:
        """A streamed block has arrived; place it in the SVB.

        Returns the SVB entry displaced by the fill (a discard), if any.
        """
        victim = self.svb.insert(address, queue_id, fill_time, version)
        if victim is not None:
            owner = self._queues.get(victim[1])
            if owner is not None:
                owner.on_block_lost()
        return victim

    def lookup(self, address: BlockAddress) -> Optional[SVBEntry]:
        """Probe the SVB (no side effects); used by the timing model's L1-miss path."""
        return self.svb.probe(address)

    def on_svb_hit(self, address: BlockAddress) -> Tuple[Optional[SVBEntry], List[FetchRequest]]:
        """The processor hit in the SVB: consume the entry, extend the stream.

        Returns the consumed entry and any follow-on fetch requests for the
        corresponding stream queue.
        """
        clock = self._activity_clock + 1
        self._activity_clock = clock
        entry = self.svb.consume(address)
        if entry is None:
            return None, []
        self._n_svb_hits += 1
        queue = self._queues.get(entry[1])
        if queue is None:
            return entry, []
        queue.on_hit()
        queue.last_active = clock
        return entry, self._fetch_from(queue)

    # ------------------------------------------------------------------ misses
    def on_offchip_miss(self, address: BlockAddress) -> List[FetchRequest]:
        """An off-chip read missed (no SVB hit).

        Stalled queues check the miss address against their FIFO heads; a
        match selects that stream and resumes fetching (Section 3.3).  Active
        queues check whether the miss address sits slightly ahead in their
        pending FIFO entries and drop it to stay aligned.
        """
        self._activity_clock += 1
        requests: List[FetchRequest] = []
        scan = self._scan_queues
        zombies: Optional[List[StreamQueue]] = None
        for queue in scan.values():
            state = queue.state_code
            if state == STATE_STALLED:
                # A stalled queue's heads cannot change while it is stalled,
                # so the (lazily cached) head tuple is an O(1) reject for the
                # overwhelmingly common no-match case.
                heads = queue._stall_heads
                if heads is None:
                    heads = tuple(queue.heads())
                    queue._stall_heads = heads
                if address in heads and queue._resolve_stall(address):
                    self._n_stalls_resolved += 1
                    queue.last_active = self._activity_clock
                    self._refill_dirty.add(queue.queue_id)
                    requests.extend(self._fetch_from(queue))
            elif state == STATE_ACTIVE:
                if queue.skip_address(address):
                    queue.last_active = self._activity_clock
                    self._refill_dirty.add(queue.queue_id)
                    requests.extend(self._fetch_from(queue))
            else:
                # Drained: refills are collected and served synchronously
                # within the event that made them necessary, so a drained
                # queue can never be revived.
                if zombies is None:
                    zombies = [queue]
                else:
                    zombies.append(queue)
        if zombies is not None:
            for queue in zombies:
                # Re-check: a resolved stall above may have revived fetching,
                # but a queue observed DRAINED in this pass cannot have been
                # refilled meanwhile, so dropping it is safe.
                scan.pop(queue.queue_id, None)
        return requests

    # ------------------------------------------------------------- invalidation
    def on_invalidate(self, address: BlockAddress) -> Optional[SVBEntry]:
        """A write (by any node) invalidates the matching SVB entry."""
        entry = self.svb.invalidate(address)
        if entry is not None:
            queue = self._queues.get(entry[1])
            if queue is not None:
                queue.on_block_lost()
        return entry

    # ---------------------------------------------------------------- cleanup
    def drain(self) -> List[SVBEntry]:
        """End of simulation: every unconsumed SVB entry is a discard."""
        return self.svb.drain()

    def stream_length_samples(self) -> List[int]:
        """Realized stream lengths (hits per queue), retired and live queues."""
        live = [q.total_hits for q in self._queues.values()]
        return self.retired_queue_hits + live
