"""Streamed Value Buffer (SVB).

A small, fully-associative buffer that holds streamed cache blocks until the
processor consumes them (Section 3.3).  Each entry carries the block address,
the id of the stream queue that fetched it, its fill time, and the block
version at fetch.  Entries hold only clean data and are invalidated when any
node (including the local one) writes the block.

The SVB is deliberately separate from the cache hierarchy: it avoids
polluting the caches with mispredicted blocks and provides a small window
that tolerates slight reordering between the stream and the processor's
actual access sequence.

The buffer sits on the replay fast path (every delivered block is one
insert; every non-spin read is one membership probe), so entries are plain
tuples ``(address, queue_id, fill_time, version)`` — see :data:`SVBEntry` —
kept in an insertion-ordered dict used as the LRU.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.stats import StatsRegistry, publish_counters
from repro.common.types import BlockAddress

#: One streamed block resident in the SVB: ``(address, queue_id, fill_time,
#: version)``.  ``fill_time`` is the simulation time (or trace index) at
#: which the block was streamed in; the timing model uses it to decide
#: whether the block arrived early enough (full coverage) or was still in
#: flight (partial coverage).  ``version`` is the block version when fetched
#: (invalidation safety-net for tests).
SVBEntry = Tuple[BlockAddress, int, float, int]


class StreamedValueBuffer:
    """Fully-associative, LRU-replaced buffer of streamed blocks.

    ``capacity_entries`` of 2**22 or more behaves as the "infinite SVB" used
    in the paper's sensitivity study.
    """

    __slots__ = (
        "capacity",
        "node_id",
        "block_size",
        "_stats",
        "_entries",
        "_n_fills",
        "_n_evictions",
        "_n_hits",
        "_n_misses",
        "_n_invalidations",
        "_n_queue_flushes",
    )

    def __init__(self, capacity_entries: int, node_id: int = 0, block_size: int = 64) -> None:
        if capacity_entries <= 0:
            raise ValueError("SVB capacity must be positive")
        self.capacity = capacity_entries
        self.node_id = node_id
        self.block_size = block_size
        self._stats = StatsRegistry(prefix=f"svb.n{node_id}")
        # Insertion-ordered dict as an LRU: most-recently-filled at the end.
        self._entries: Dict[BlockAddress, SVBEntry] = {}
        # Hot-path activity counters, published into the registry lazily.
        self._n_fills = 0
        self._n_evictions = 0
        self._n_hits = 0
        self._n_misses = 0
        self._n_invalidations = 0
        self._n_queue_flushes = 0

    @property
    def stats(self) -> StatsRegistry:
        """Statistics registry, synchronized with the plain-int counters on read."""
        return publish_counters(self._stats, {
            "fills": self._n_fills,
            "evictions": self._n_evictions,
            "hits": self._n_hits,
            "misses": self._n_misses,
            "invalidations": self._n_invalidations,
            "queue_flushes": self._n_queue_flushes,
        })

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: BlockAddress) -> bool:
        return address in self._entries

    @property
    def capacity_bytes(self) -> int:
        return self.capacity * self.block_size

    # ------------------------------------------------------------------ insert
    def insert(self, address: BlockAddress, queue_id: int,
               fill_time: float = 0.0, version: int = 0) -> Optional[SVBEntry]:
        """Insert a streamed block; return the LRU victim evicted, if any.

        An evicted entry is an unused streamed block — the caller records it
        as a discard.  Re-inserting an address refreshes its LRU position and
        queue binding without producing a victim.
        """
        entries = self._entries
        if address in entries:
            # Move to the MRU end by delete + re-insert (plain dicts keep
            # insertion order).
            del entries[address]
            entries[address] = (address, queue_id, fill_time, version)
            return None
        victim: Optional[SVBEntry] = None
        if len(entries) >= self.capacity:
            lru_address = next(iter(entries))
            victim = entries.pop(lru_address)
            self._n_evictions += 1
        entries[address] = (address, queue_id, fill_time, version)
        self._n_fills += 1
        return victim

    # ------------------------------------------------------------------- probe
    def probe(self, address: BlockAddress) -> Optional[SVBEntry]:
        """Look up a block without consuming it (no LRU update)."""
        return self._entries.get(address)

    def consume(self, address: BlockAddress) -> Optional[SVBEntry]:
        """Hit: remove the entry (it moves to the L1 cache) and return it.

        Returns None on a miss.  The stream engine uses the returned entry's
        queue id to retrieve the next block of that stream.
        """
        entry = self._entries.pop(address, None)
        if entry is None:
            self._n_misses += 1
            return None
        self._n_hits += 1
        return entry

    # -------------------------------------------------------------- invalidate
    def invalidate(self, address: BlockAddress) -> Optional[SVBEntry]:
        """Invalidate a block on a write by any processor; return the entry."""
        entry = self._entries.pop(address, None)
        if entry is not None:
            self._n_invalidations += 1
        return entry

    def invalidate_queue(self, queue_id: int) -> List[SVBEntry]:
        """Drop every entry fetched by a given stream queue (queue reclaimed)."""
        doomed = [a for a, e in self._entries.items() if e[1] == queue_id]
        removed = []
        for address in doomed:
            removed.append(self._entries.pop(address))
        if removed:
            self._n_queue_flushes += len(removed)
        return removed

    def drain(self) -> List[SVBEntry]:
        """Remove and return every entry (end-of-simulation discard accounting)."""
        remaining = list(self._entries.values())
        self._entries.clear()
        return remaining

    def resident_addresses(self) -> List[BlockAddress]:
        return list(self._entries.keys())

    def __repr__(self) -> str:
        return f"SVB(node={self.node_id}, {len(self)}/{self.capacity} entries)"
