"""Cache hierarchy substrate: set-associative caches, MSHRs, main memory."""

from repro.memory.cache import Cache, CacheLine, LineState
from repro.memory.main_memory import MainMemory
from repro.memory.mshr import MSHR, MSHRFile
from repro.memory.replacement import LRUPolicy, RandomPolicy, ReplacementPolicy

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "Cache",
    "CacheLine",
    "LineState",
    "MSHR",
    "MSHRFile",
    "MainMemory",
]
