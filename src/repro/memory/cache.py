"""Set-associative cache model.

The cache is a *tag store only*: block contents are never simulated because
the reproduction reasons about addresses, hits and misses.  Lines carry a
MESI-like state so the coherence substrate can track ownership, and the cache
reports evictions so inclusive hierarchies and directory state stay in sync.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.config import CacheConfig
from repro.common.stats import StatsRegistry
from repro.common.types import BlockAddress
from repro.memory.replacement import LRUPolicy, ReplacementPolicy


class LineState(enum.Enum):
    """MESI line states (the directory protocol maps onto these)."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"

    @property
    def is_valid(self) -> bool:
        return self is not LineState.INVALID

    @property
    def can_write(self) -> bool:
        return self in (LineState.EXCLUSIVE, LineState.MODIFIED)


@dataclass
class CacheLine:
    """One tag-store entry."""

    address: BlockAddress
    state: LineState = LineState.INVALID
    dirty: bool = False

    @property
    def valid(self) -> bool:
        return self.state.is_valid


@dataclass
class Eviction:
    """Describes a block displaced by a fill."""

    address: BlockAddress
    state: LineState
    dirty: bool


class Cache:
    """A set-associative, write-back, allocate-on-miss cache.

    The cache exposes a small functional API:

    * :meth:`lookup` — probe without side effects.
    * :meth:`access` — probe and update recency; returns hit/miss.
    * :meth:`fill` — insert a block, possibly evicting another.
    * :meth:`invalidate` / :meth:`downgrade` — coherence actions.
    """

    def __init__(
        self,
        config: CacheConfig,
        name: str = "cache",
        policy: Optional[ReplacementPolicy] = None,
    ) -> None:
        self.config = config
        self.name = name
        self.policy = policy if policy is not None else LRUPolicy()
        self.stats = StatsRegistry(prefix=name)
        self._num_sets = config.num_sets
        self._ways = config.associativity
        # sets[set_index][way] -> CacheLine or None
        self._sets: List[List[Optional[CacheLine]]] = [
            [None] * self._ways for _ in range(self._num_sets)
        ]
        # address -> (set_index, way) for O(1) probes
        self._index: Dict[BlockAddress, Tuple[int, int]] = {}

    # -- geometry -----------------------------------------------------------
    def set_index_of(self, address: BlockAddress) -> int:
        """Map a block address to its set."""
        return address % self._num_sets

    @property
    def capacity_blocks(self) -> int:
        return self.config.num_blocks

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return len(self._index)

    # -- probes ---------------------------------------------------------------
    def lookup(self, address: BlockAddress) -> Optional[CacheLine]:
        """Return the resident line for ``address`` without updating recency."""
        loc = self._index.get(address)
        if loc is None:
            return None
        set_index, way = loc
        line = self._sets[set_index][way]
        if line is None or not line.valid:
            return None
        return line

    def contains(self, address: BlockAddress) -> bool:
        return self.lookup(address) is not None

    def access(self, address: BlockAddress, write: bool = False) -> bool:
        """Probe for ``address``; update recency and dirty bit on a hit.

        Returns True on hit.  A write hit on a non-writable (SHARED) line
        still returns True here; the coherence layer is responsible for
        issuing the upgrade — the cache only tracks residency.
        """
        loc = self._index.get(address)
        if loc is None:
            self.stats.counter("misses").increment()
            return False
        set_index, way = loc
        line = self._sets[set_index][way]
        if line is None or not line.valid:
            self.stats.counter("misses").increment()
            return False
        self.policy.on_access(set_index, way)
        if write:
            line.dirty = True
            if line.state is LineState.EXCLUSIVE:
                line.state = LineState.MODIFIED
        self.stats.counter("hits").increment()
        return True

    # -- fills and evictions --------------------------------------------------
    def fill(self, address: BlockAddress, state: LineState = LineState.SHARED) -> Optional[Eviction]:
        """Insert ``address``; return the eviction it caused, if any."""
        if not state.is_valid:
            raise ValueError("cannot fill a line in INVALID state")
        existing = self._index.get(address)
        if existing is not None:
            set_index, way = existing
            line = self._sets[set_index][way]
            assert line is not None
            line.state = state
            self.policy.on_access(set_index, way)
            return None

        set_index = self.set_index_of(address)
        ways = self._sets[set_index]
        victim_eviction: Optional[Eviction] = None

        # Prefer an empty / invalid way.
        way = next(
            (i for i, line in enumerate(ways) if line is None or not line.valid), None
        )
        if way is None:
            occupied = list(range(self._ways))
            way = self.policy.victim(set_index, occupied)
            victim_line = ways[way]
            assert victim_line is not None
            victim_eviction = Eviction(
                address=victim_line.address,
                state=victim_line.state,
                dirty=victim_line.dirty,
            )
            del self._index[victim_line.address]
            self.stats.counter("evictions").increment()
            if victim_line.dirty:
                self.stats.counter("writebacks").increment()

        ways[way] = CacheLine(address=address, state=state, dirty=state is LineState.MODIFIED)
        self._index[address] = (set_index, way)
        self.policy.on_fill(set_index, way)
        self.stats.counter("fills").increment()
        return victim_eviction

    # -- coherence actions ------------------------------------------------------
    def invalidate(self, address: BlockAddress) -> bool:
        """Remove ``address`` from the cache; returns True if it was present."""
        loc = self._index.get(address)
        if loc is None:
            return False
        set_index, way = loc
        line = self._sets[set_index][way]
        assert line is not None
        line.state = LineState.INVALID
        line.dirty = False
        del self._index[address]
        self.policy.on_invalidate(set_index, way)
        self.stats.counter("invalidations").increment()
        return True

    def downgrade(self, address: BlockAddress) -> bool:
        """Transition a writable line to SHARED (on a remote read)."""
        line = self.lookup(address)
        if line is None:
            return False
        if line.state.can_write:
            line.state = LineState.SHARED
            line.dirty = False
            self.stats.counter("downgrades").increment()
        return True

    def upgrade(self, address: BlockAddress) -> bool:
        """Transition a SHARED line to MODIFIED (local write after upgrade)."""
        line = self.lookup(address)
        if line is None:
            return False
        line.state = LineState.MODIFIED
        line.dirty = True
        return True

    # -- iteration ----------------------------------------------------------------
    def resident_blocks(self) -> Iterator[BlockAddress]:
        """Iterate over every valid block address currently resident."""
        return iter(list(self._index.keys()))

    def state_of(self, address: BlockAddress) -> LineState:
        line = self.lookup(address)
        return line.state if line is not None else LineState.INVALID

    def __repr__(self) -> str:
        return (
            f"Cache({self.name}, {self.config.size_bytes // 1024}KB, "
            f"{self._ways}-way, {self.occupancy()}/{self.capacity_blocks} blocks)"
        )
