"""Cache replacement policies.

The paper's caches are LRU; a random policy is provided for ablations.
Policies operate on per-set way indices so the cache stays policy-agnostic.
"""

from __future__ import annotations

import abc
from typing import Dict, List

from repro.common.rng import DeterministicRNG


class ReplacementPolicy(abc.ABC):
    """Interface for per-set replacement decisions."""

    @abc.abstractmethod
    def on_access(self, set_index: int, way: int) -> None:
        """Record that ``way`` in ``set_index`` was accessed (hit or fill)."""

    @abc.abstractmethod
    def on_fill(self, set_index: int, way: int) -> None:
        """Record that ``way`` in ``set_index`` was filled with a new block."""

    @abc.abstractmethod
    def victim(self, set_index: int, occupied_ways: List[int]) -> int:
        """Choose the way to evict among ``occupied_ways`` (all ways full)."""

    @abc.abstractmethod
    def on_invalidate(self, set_index: int, way: int) -> None:
        """Record that ``way`` was invalidated (becomes preferred victim)."""


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used replacement.

    Maintains a per-set recency list; the head is most-recently used.
    """

    def __init__(self) -> None:
        self._recency: Dict[int, List[int]] = {}

    def _stack(self, set_index: int) -> List[int]:
        return self._recency.setdefault(set_index, [])

    def on_access(self, set_index: int, way: int) -> None:
        stack = self._stack(set_index)
        if way in stack:
            stack.remove(way)
        stack.insert(0, way)

    def on_fill(self, set_index: int, way: int) -> None:
        self.on_access(set_index, way)

    def on_invalidate(self, set_index: int, way: int) -> None:
        stack = self._stack(set_index)
        if way in stack:
            stack.remove(way)
            stack.append(way)  # invalidated ways become LRU

    def victim(self, set_index: int, occupied_ways: List[int]) -> int:
        stack = self._stack(set_index)
        # Ways never touched are preferred victims, then the LRU tail.
        untouched = [w for w in occupied_ways if w not in stack]
        if untouched:
            return untouched[0]
        for way in reversed(stack):
            if way in occupied_ways:
                return way
        return occupied_ways[0]


class RandomPolicy(ReplacementPolicy):
    """Random replacement, for ablation against LRU."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = DeterministicRNG(seed)

    def on_access(self, set_index: int, way: int) -> None:  # noqa: D102 - stateless
        pass

    def on_fill(self, set_index: int, way: int) -> None:  # noqa: D102 - stateless
        pass

    def on_invalidate(self, set_index: int, way: int) -> None:  # noqa: D102 - stateless
        pass

    def victim(self, set_index: int, occupied_ways: List[int]) -> int:
        return self._rng.choice(occupied_ways)
