"""Miss status holding registers (MSHRs).

MSHRs bound the number of outstanding misses a cache can sustain, which is
what limits memory-level parallelism (MLP) in the timing model — the paper's
Table 3 reports consumption MLP and the ocean discussion hinges on the 32
available L2 MSHRs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.stats import StatsRegistry
from repro.common.types import BlockAddress


@dataclass
class MSHR:
    """One outstanding miss: the target block plus coalesced waiters."""

    address: BlockAddress
    issue_time: float
    waiters: int = 1
    is_write: bool = False


class MSHRFile:
    """A fixed-capacity pool of MSHRs with miss coalescing.

    Allocation fails when the file is full; the caller must stall.  A second
    miss to an in-flight block coalesces onto the existing entry rather than
    consuming a new one, exactly as real MSHRs do.
    """

    def __init__(self, capacity: int, name: str = "mshr") -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self.name = name
        self.stats = StatsRegistry(prefix=name)
        self._entries: Dict[BlockAddress, MSHR] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def outstanding(self) -> int:
        return len(self._entries)

    def lookup(self, address: BlockAddress) -> Optional[MSHR]:
        return self._entries.get(address)

    def allocate(
        self, address: BlockAddress, now: float = 0.0, is_write: bool = False
    ) -> Optional[MSHR]:
        """Allocate (or coalesce into) an MSHR for ``address``.

        Returns the MSHR on success, or None if the file is full and the
        address is not already in flight.
        """
        entry = self._entries.get(address)
        if entry is not None:
            entry.waiters += 1
            entry.is_write = entry.is_write or is_write
            self.stats.counter("coalesced").increment()
            return entry
        if self.full:
            self.stats.counter("stalls_full").increment()
            return None
        entry = MSHR(address=address, issue_time=now, is_write=is_write)
        self._entries[address] = entry
        self.stats.counter("allocations").increment()
        self.stats.histogram("occupancy").record(len(self._entries))
        return entry

    def release(self, address: BlockAddress) -> MSHR:
        """Retire the MSHR for ``address`` (its fill has arrived)."""
        entry = self._entries.pop(address, None)
        if entry is None:
            raise KeyError(f"no outstanding MSHR for block {address:#x}")
        self.stats.counter("releases").increment()
        return entry

    def in_flight_blocks(self) -> List[BlockAddress]:
        return list(self._entries.keys())
