"""Main-memory model: banked DRAM with a fixed access latency.

The paper's memory is 60 ns with 64 banks per node (Table 1).  The timing
model charges the access latency plus a simple bank-conflict penalty when
too many concurrent accesses map to the same bank.
"""

from __future__ import annotations

from typing import Dict

from repro.common.config import MemoryConfig
from repro.common.stats import StatsRegistry
from repro.common.types import BlockAddress


class MainMemory:
    """Per-node main memory with bank-level occupancy tracking.

    The model is intentionally simple: each bank can start one access per
    ``access_latency_ns`` window; an access that finds its bank busy waits for
    the bank's previous access to complete.  This captures the first-order
    effect that bursty access patterns (e.g. ocean's communication bursts)
    see queueing at the memory, without a full DRAM timing model.
    """

    def __init__(self, config: MemoryConfig, node_id: int = 0) -> None:
        self.config = config
        self.node_id = node_id
        self.stats = StatsRegistry(prefix=f"memory{node_id}")
        #: Next time each bank becomes free, in ns.
        self._bank_free_at: Dict[int, float] = {}

    def bank_of(self, address: BlockAddress) -> int:
        """Map a block address to a bank (low-order interleaving)."""
        return address % self.config.banks_per_node

    def access_latency(self, address: BlockAddress, now_ns: float) -> float:
        """Latency (ns) for an access to ``address`` starting at ``now_ns``.

        Includes queueing delay if the target bank is busy, and marks the bank
        busy for the duration of the access.
        """
        bank = self.bank_of(address)
        free_at = self._bank_free_at.get(bank, 0.0)
        start = max(now_ns, free_at)
        queue_delay = start - now_ns
        finish = start + self.config.access_latency_ns
        self._bank_free_at[bank] = finish
        self.stats.counter("accesses").increment()
        if queue_delay > 0:
            self.stats.counter("bank_conflicts").increment()
        self.stats.histogram("queue_delay_ns").record(int(queue_delay))
        return finish - now_ns

    def reset(self) -> None:
        self._bank_free_at.clear()
