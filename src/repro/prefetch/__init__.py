"""Baseline prefetchers used in the paper's competitive comparison (Figure 12).

* :mod:`repro.prefetch.stride` — an adaptive stride stream-buffer prefetcher
  (the kind shipped in commercial processors of the era).
* :mod:`repro.prefetch.ghb` — the Global History Buffer prefetcher of Nesbit
  and Smith, in its global/distance-correlating (G/DC) and global/address-
  correlating (G/AC) variants.
* :mod:`repro.prefetch.harness` — a trace-driven evaluation harness that runs
  any of the baselines (or TSE, through its own simulator) over the same
  consumption streams and reports coverage and discards.

Per the paper's methodology, the baselines train and predict only on
consumptions (coherent read misses), and prefetched blocks are stored in a
small buffer identical in size to TSE's SVB.
"""

from repro.prefetch.base import PrefetchBuffer, Prefetcher
from repro.prefetch.ghb import GHBPrefetcher
from repro.prefetch.harness import PrefetcherStats, evaluate_prefetcher
from repro.prefetch.stride import StridePrefetcher

__all__ = [
    "Prefetcher",
    "PrefetchBuffer",
    "StridePrefetcher",
    "GHBPrefetcher",
    "PrefetcherStats",
    "evaluate_prefetcher",
]
