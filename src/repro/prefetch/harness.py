"""Trace-driven evaluation harness for the baseline prefetchers.

Replays a trace through the coherence protocol (to classify consumptions,
exactly as for TSE), gives each node its own prefetcher instance and
SVB-sized prefetch buffer, and reports coverage and discards on the same
definitions as the TSE simulator so Figure 12's bars are directly
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.coherence.protocol import CoherenceProtocol
from repro.common.config import DEFAULT_WARMUP_FRACTION
from repro.common.stats import ratio
from repro.common.types import AccessTrace, MissClass
from repro.prefetch.base import PrefetchBuffer, Prefetcher


@dataclass
class PrefetcherStats:
    """Coverage / discard results for one prefetcher on one trace."""

    technique: str = ""
    workload: str = ""
    buffer_hits: int = 0
    remaining_consumptions: int = 0
    blocks_prefetched: int = 0
    discarded_blocks: int = 0
    spin_misses: int = 0

    @property
    def total_consumptions(self) -> int:
        return self.buffer_hits + self.remaining_consumptions

    @property
    def coverage(self) -> float:
        return ratio(self.buffer_hits, self.total_consumptions)

    @property
    def discard_rate(self) -> float:
        return ratio(self.discarded_blocks, self.total_consumptions)

    @property
    def accuracy(self) -> float:
        return ratio(self.buffer_hits, self.blocks_prefetched)

    def as_dict(self) -> Dict[str, float]:
        return {
            "technique": self.technique,
            "workload": self.workload,
            "coverage": self.coverage,
            "discard_rate": self.discard_rate,
            "accuracy": self.accuracy,
            "total_consumptions": self.total_consumptions,
            "blocks_prefetched": self.blocks_prefetched,
        }


def evaluate_prefetcher(
    trace: AccessTrace,
    prefetcher_factory: Callable[[], Prefetcher],
    buffer_entries: int = 32,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> PrefetcherStats:
    """Run one baseline prefetcher over a trace.

    Args:
        trace: The interleaved multi-node access trace.
        prefetcher_factory: Builds a fresh per-node prefetcher.
        buffer_entries: Prefetch-buffer capacity (32 = the 2 KB SVB).
        warmup_fraction: Fraction of the trace excluded from statistics
            (state still trains during warm-up).  Defaults to the shared
            :data:`~repro.common.config.DEFAULT_WARMUP_FRACTION` so TSE and
            baseline prefetchers are measured over the same window.
    """
    num_nodes = trace.num_nodes
    protocol = CoherenceProtocol(num_nodes, cache_model="infinite")
    prefetchers = [prefetcher_factory() for _ in range(num_nodes)]
    buffers = [PrefetchBuffer(buffer_entries) for _ in range(num_nodes)]
    stats = PrefetcherStats(technique=prefetchers[0].name, workload=trace.name)
    warmup_count = int(len(trace) * warmup_fraction)
    # Buffer fill/discard counters at the measurement boundary, so warm-up
    # activity is excluded from the reported rates.
    baseline_fills = [0] * num_nodes
    baseline_discards = [0] * num_nodes

    for index, access in enumerate(trace):
        if index == warmup_count and warmup_count > 0:
            stats = PrefetcherStats(technique=prefetchers[0].name, workload=trace.name)
            baseline_fills = [b.fills for b in buffers]
            baseline_discards = [b.discards for b in buffers]
        node = access.node

        if access.is_write:
            # Writes invalidate prefetched copies everywhere (clean-only buffers).
            for buffer in buffers:
                buffer.invalidate(access.address)
            protocol.process(access)
            continue

        if not access.is_spin and buffers[node].consume(access.address):
            stats.buffer_hits += 1
            protocol.install_copy(node, access.address)
            for candidate in prefetchers[node].on_hit(access.address):
                if candidate > 0:
                    buffers[node].insert(candidate)
            continue

        result = protocol.process(access)
        if result.miss_class is MissClass.COHERENT_READ_MISS:
            stats.remaining_consumptions += 1
            for candidate in prefetchers[node].on_consumption(access.address, access.pc):
                if candidate > 0:
                    buffers[node].insert(candidate)
        elif result.miss_class is MissClass.SPIN_COHERENT_MISS:
            stats.spin_misses += 1

    for node in range(num_nodes):
        buffers[node].drain()
        stats.blocks_prefetched += buffers[node].fills - baseline_fills[node]
        stats.discarded_blocks += buffers[node].discards - baseline_discards[node]
    return stats
