"""Global History Buffer (GHB) prefetcher (Nesbit & Smith, HPCA 2004).

The GHB keeps the last N miss addresses in an on-chip circular buffer; an
index table points to the most recent buffer entry with a given key, and
entries with the same key are chained through link pointers.  On a miss, the
prefetcher walks from the most recent previous entry with the same key and
prefetches the addresses that followed it historically.

Two global indexing variants are evaluated in the paper (Section 5.5):

* **G/AC** (global / address correlating): the key is the miss address; the
  prefetcher replays the addresses that followed the previous occurrence of
  the same address — the on-chip analogue of what TSE does with CMOBs.
* **G/DC** (global / distance correlating): the key is the *delta* between
  consecutive miss addresses; the prefetcher replays the delta sequence that
  followed the previous occurrence of the same delta, applied cumulatively to
  the current address.

The paper configures a 512-entry history buffer and a prefetch degree of 8;
its key result is that 512 entries is far too small to capture the repetitive
consumption sequences that TSE's memory-resident, multi-million-entry CMOB
captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.types import BlockAddress
from repro.prefetch.base import Prefetcher


@dataclass
class _GHBEntry:
    """One history-buffer slot: the miss address and a link to the previous
    entry with the same index key (by monotonic sequence number)."""

    address: BlockAddress
    link: Optional[int] = None


class GHBPrefetcher(Prefetcher):
    """Global History Buffer prefetcher with G/AC or G/DC indexing."""

    def __init__(
        self,
        mode: str = "G/AC",
        history_entries: int = 512,
        index_entries: int = 256,
        degree: int = 8,
    ) -> None:
        if mode not in ("G/AC", "G/DC"):
            raise ValueError(f"mode must be 'G/AC' or 'G/DC', got {mode!r}")
        self.name = f"ghb_{'ac' if mode == 'G/AC' else 'dc'}"
        super().__init__()
        self.mode = mode
        self.history_entries = history_entries
        self.index_entries = index_entries
        self.degree = degree
        #: Circular history buffer; index = sequence number % history_entries.
        self._buffer: List[Optional[_GHBEntry]] = [None] * history_entries
        #: Monotonic count of entries ever pushed.
        self._pushed = 0
        #: Index table: key -> sequence number of the most recent entry.
        self._index: Dict[int, int] = {}
        self._last_address: Optional[BlockAddress] = None

    # ------------------------------------------------------------------ helpers
    def _entry(self, sequence: int) -> Optional[_GHBEntry]:
        """Fetch a history entry by sequence number, None if overwritten."""
        if sequence < 0 or sequence < self._pushed - self.history_entries:
            return None
        if sequence >= self._pushed:
            return None
        return self._buffer[sequence % self.history_entries]

    def _key_for(self, address: BlockAddress) -> Optional[int]:
        if self.mode == "G/AC":
            return address
        if self._last_address is None:
            return None
        return address - self._last_address

    def _push(self, address: BlockAddress, key: Optional[int]) -> None:
        """Append the miss to the history buffer and update the index table."""
        link = self._index.get(key) if key is not None else None
        entry = _GHBEntry(address=address, link=link)
        self._buffer[self._pushed % self.history_entries] = entry
        if key is not None:
            # Bound the index table size by evicting an arbitrary old key
            # (FIFO over insertion order approximated by dict order).
            if key not in self._index and len(self._index) >= self.index_entries:
                oldest = next(iter(self._index))
                del self._index[oldest]
            self._index[key] = self._pushed
        self._pushed += 1

    # ------------------------------------------------------------------- train
    def on_consumption(self, address: BlockAddress, pc: int = 0) -> List[BlockAddress]:
        key = self._key_for(address)
        previous_sequence = self._index.get(key) if key is not None else None

        prefetches: List[BlockAddress] = []
        if previous_sequence is not None:
            if self.mode == "G/AC":
                prefetches = self._address_correlation(previous_sequence)
            else:
                prefetches = self._distance_correlation(previous_sequence, address)

        self._push(address, key)
        self._last_address = address
        if prefetches:
            self.stats.counter("prefetches").increment(len(prefetches))
        else:
            self.stats.counter("no_prediction").increment()
        return prefetches

    def _address_correlation(self, previous_sequence: int) -> List[BlockAddress]:
        """Replay the addresses that followed the previous occurrence."""
        prefetches: List[BlockAddress] = []
        for offset in range(1, self.degree + 1):
            entry = self._entry(previous_sequence + offset)
            if entry is None:
                break
            prefetches.append(entry.address)
        return prefetches

    def _distance_correlation(
        self, previous_sequence: int, current_address: BlockAddress
    ) -> List[BlockAddress]:
        """Replay the delta sequence that followed the previous occurrence."""
        prefetches: List[BlockAddress] = []
        base = self._entry(previous_sequence)
        if base is None:
            return prefetches
        # The most recent entry with this delta may have nothing after it yet
        # (it is the newest miss); follow its link to an older occurrence that
        # does have recorded followers.
        while base is not None and self._entry(previous_sequence + 1) is None:
            if base.link is None:
                return prefetches
            previous_sequence = base.link
            base = self._entry(previous_sequence)
        if base is None:
            return prefetches
        predicted = current_address
        previous_entry = base
        for offset in range(1, self.degree + 1):
            entry = self._entry(previous_sequence + offset)
            if entry is None:
                break
            delta = entry.address - previous_entry.address
            predicted += delta
            if predicted > 0:
                prefetches.append(predicted)
            previous_entry = entry
        return prefetches
