"""Adaptive stride stream-buffer prefetcher.

The paper's description (Section 5.5): "an adaptive stride predictor that
detects strided access patterns if two consecutive consumption addresses are
separated by the same stride, and prefetches eight blocks in advance of a
processor request."  This is the predictor-directed stream-buffer style of
prefetcher found in commercial processors of the time (Opteron, Xeon,
UltraSPARC III).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.types import BlockAddress
from repro.prefetch.base import Prefetcher


class StridePrefetcher(Prefetcher):
    """Detects a repeated stride between consecutive consumptions.

    State machine per node (the harness instantiates one prefetcher per
    node):

    * remember the previous consumption address and the previous stride;
    * when the new stride equals the previous stride (and is non-zero), the
      pattern is confirmed and ``degree`` blocks are prefetched ahead;
    * while the confirmed stride keeps matching, keep prefetching ahead of
      the most recently requested block.
    """

    name = "stride"

    def __init__(self, degree: int = 8) -> None:
        super().__init__()
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.degree = degree
        self._last_address: Optional[BlockAddress] = None
        self._last_stride: Optional[int] = None
        self._confirmed: bool = False
        #: Furthest block already prefetched on the confirmed stream, so a
        #: steady stride does not re-prefetch the same blocks.
        self._frontier: Optional[BlockAddress] = None

    def on_consumption(self, address: BlockAddress, pc: int = 0) -> List[BlockAddress]:
        prefetches: List[BlockAddress] = []
        stride: Optional[int] = None
        if self._last_address is not None:
            stride = address - self._last_address

        if stride is not None and stride != 0 and stride == self._last_stride:
            # Pattern confirmed (two identical consecutive strides).
            if not self._confirmed or self._frontier is None:
                self._confirmed = True
                self._frontier = address
            start = max(self._frontier, address)
            for i in range(1, self.degree + 1):
                candidate = address + i * stride
                if candidate > start or stride < 0:
                    prefetches.append(candidate)
            if prefetches:
                self._frontier = prefetches[-1]
            self.stats.counter("streams_followed").increment()
        else:
            self._confirmed = False
            self._frontier = None

        self._last_stride = stride
        self._last_address = address
        if prefetches:
            self.stats.counter("prefetches").increment(len(prefetches))
        return prefetches
