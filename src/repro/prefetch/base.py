"""Prefetcher interface and the small prefetch buffer shared by the baselines."""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import List

from repro.common.stats import StatsRegistry
from repro.common.types import BlockAddress


class PrefetchBuffer:
    """A small fully-associative buffer for prefetched blocks.

    Mirrors the paper's methodology: "Prefetched blocks are stored in a small
    cache identical to TSE's SVB."  LRU replacement; entries are invalidated
    on writes by any node; an entry removed without being consumed is a
    discard.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[BlockAddress, bool]" = OrderedDict()
        #: Number of entries that left the buffer without being consumed.
        self.discards = 0
        #: Number of blocks ever inserted.
        self.fills = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: BlockAddress) -> bool:
        return address in self._entries

    def insert(self, address: BlockAddress) -> None:
        """Insert a prefetched block, evicting LRU (a discard) when full."""
        if address in self._entries:
            self._entries.move_to_end(address)
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.discards += 1
        self._entries[address] = True
        self.fills += 1

    def consume(self, address: BlockAddress) -> bool:
        """Hit: remove the block (it moves to the cache).  Returns hit/miss."""
        if address in self._entries:
            del self._entries[address]
            return True
        return False

    def invalidate(self, address: BlockAddress) -> bool:
        """A write invalidated the block; counts as a discard if present."""
        if address in self._entries:
            del self._entries[address]
            self.discards += 1
            return True
        return False

    def drain(self) -> int:
        """End of run: all remaining entries are discards."""
        leftover = len(self._entries)
        self.discards += leftover
        self._entries.clear()
        return leftover


class Prefetcher(abc.ABC):
    """Per-node prefetch engine interface.

    The harness calls :meth:`on_consumption` for every coherent read miss
    that was not satisfied by the prefetch buffer, and inserts whatever the
    prefetcher returns into the node's buffer.
    """

    name: str = "prefetcher"

    def __init__(self) -> None:
        self.stats = StatsRegistry(prefix=self.name)

    @abc.abstractmethod
    def on_consumption(self, address: BlockAddress, pc: int = 0) -> List[BlockAddress]:
        """Train on a consumption miss and return addresses to prefetch."""

    def on_hit(self, address: BlockAddress) -> List[BlockAddress]:
        """Called when an access hits in the prefetch buffer.

        Baselines do not chain further prefetches on buffer hits by default
        (unlike TSE, whose stream queues keep following the stream); override
        for prefetchers that do.
        """
        return []
