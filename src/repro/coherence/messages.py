"""Coherence and streaming message types with size accounting.

Interconnect bandwidth overhead (Figure 11) is computed from the byte volume
of messages crossing the network bisection, so every message type declares
its payload size.  Sizes follow the paper's accounting: 64-byte data blocks,
6-byte address entries for streamed addresses, small control messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.common.types import BlockAddress, NodeId

#: Control-message payload (request/ack): address + type + ids.
CONTROL_PAYLOAD_BYTES = 8
#: One data block.
DATA_PAYLOAD_BYTES = 64
#: One streamed address entry (6-byte physical address, Section 5.4).
STREAM_ADDRESS_BYTES = 6
#: CMOB pointer update payload: node id + CMOB offset.
CMOB_POINTER_BYTES = 6


class MessageType(enum.Enum):
    """Message vocabulary of the baseline protocol plus TSE extensions."""

    # --- baseline directory protocol -------------------------------------
    READ_REQUEST = "read_request"
    READ_EXCLUSIVE_REQUEST = "read_exclusive_request"
    UPGRADE_REQUEST = "upgrade_request"
    DATA_REPLY = "data_reply"
    DATA_REPLY_COHERENT = "data_reply_coherent"  # fill annotated as a coherence miss
    FORWARD_REQUEST = "forward_request"  # directory forwards request to owner
    INVALIDATE = "invalidate"
    INVALIDATE_ACK = "invalidate_ack"
    WRITEBACK = "writeback"
    WRITEBACK_ACK = "writeback_ack"
    DOWNGRADE = "downgrade"

    # --- TSE additions (Section 3) -----------------------------------------
    CMOB_POINTER_UPDATE = "cmob_pointer_update"
    STREAM_REQUEST = "stream_request"
    ADDRESS_STREAM = "address_stream"
    STREAMED_DATA_REQUEST = "streamed_data_request"
    STREAMED_DATA_REPLY = "streamed_data_reply"

    @property
    def carries_data(self) -> bool:
        return self in (
            MessageType.DATA_REPLY,
            MessageType.DATA_REPLY_COHERENT,
            MessageType.WRITEBACK,
            MessageType.STREAMED_DATA_REPLY,
        )

    @property
    def is_tse_overhead(self) -> bool:
        """True for messages added by TSE beyond the baseline protocol.

        Correctly-streamed data blocks replace baseline coherent-read fills
        one-for-one, so STREAMED_DATA_REPLY is only *overhead* when the block
        is later discarded; that distinction is handled by the bandwidth
        analysis, not here.
        """
        return self in (
            MessageType.CMOB_POINTER_UPDATE,
            MessageType.STREAM_REQUEST,
            MessageType.ADDRESS_STREAM,
            MessageType.STREAMED_DATA_REQUEST,
            MessageType.STREAMED_DATA_REPLY,
        )


@dataclass
class CoherenceMessage:
    """One message traversing the interconnect.

    Attributes:
        msg_type: Kind of message.
        src: Sending node.
        dst: Receiving node.
        address: Block the message concerns (stream messages use the head).
        num_addresses: For ADDRESS_STREAM messages, how many address entries
            the packet carries.
        payload_bytes: Explicit payload override; computed from the type when
            left at None.
    """

    msg_type: MessageType
    src: NodeId
    dst: NodeId
    address: BlockAddress = 0
    num_addresses: int = 0
    payload_bytes: Optional[int] = None

    def size_bytes(self, header_bytes: int = 16) -> int:
        """Total wire size including the routing header."""
        if self.payload_bytes is not None:
            payload = self.payload_bytes
        elif self.msg_type.carries_data:
            payload = DATA_PAYLOAD_BYTES + CONTROL_PAYLOAD_BYTES
        elif self.msg_type is MessageType.ADDRESS_STREAM:
            payload = CONTROL_PAYLOAD_BYTES + self.num_addresses * STREAM_ADDRESS_BYTES
        elif self.msg_type is MessageType.CMOB_POINTER_UPDATE:
            payload = CONTROL_PAYLOAD_BYTES + CMOB_POINTER_BYTES
        else:
            payload = CONTROL_PAYLOAD_BYTES
        return header_bytes + payload

    @property
    def is_local(self) -> bool:
        """True when source and destination are the same node (no hop cost)."""
        return self.src == self.dst


def total_bytes(messages: List[CoherenceMessage], header_bytes: int = 16) -> int:
    """Sum of wire sizes for a list of messages."""
    return sum(m.size_bytes(header_bytes) for m in messages)
