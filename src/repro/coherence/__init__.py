"""Directory-based cache-coherence substrate.

The paper's baseline is a low-occupancy, directory-based, NACK-free protocol
on a 16-node DSM.  This package provides:

* :mod:`repro.coherence.messages` — coherence message vocabulary with size
  accounting (used for the bandwidth results of Figure 11).
* :mod:`repro.coherence.directory` — per-block directory entries (owner,
  sharers, state) extended with the CMOB pointers TSE adds.
* :mod:`repro.coherence.protocol` — a functional MESI-style protocol that
  classifies every read as hit / cold miss / capacity miss / coherent read
  miss ("consumption") and emits the message sequence each transaction needs.
"""

from repro.coherence.directory import Directory, DirectoryEntry, DirectoryState
from repro.coherence.messages import CoherenceMessage, MessageType
from repro.coherence.protocol import AccessResult, CoherenceProtocol

__all__ = [
    "CoherenceMessage",
    "MessageType",
    "Directory",
    "DirectoryEntry",
    "DirectoryState",
    "AccessResult",
    "CoherenceProtocol",
]
