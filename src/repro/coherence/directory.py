"""Directory state for the DSM coherence protocol.

Each cache block has a *home node* (address-interleaved) whose directory
tracks the block's global state: uncached, shared (with a sharer bit vector),
or modified (with a single owner).  TSE extends each entry with a small list
of CMOB pointers identifying where recent consumers recorded the block in
their coherence-miss order (Section 3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.stats import StatsRegistry, publish_counters
from repro.common.types import BlockAddress, NodeId


class DirectoryState(enum.Enum):
    """Global state of a block as seen by its home directory."""

    UNCACHED = "uncached"
    SHARED = "shared"
    MODIFIED = "modified"


#: Directory-resident pointer into a node's CMOB: ``(node, offset)``.
#: ``node`` is the node whose CMOB holds the entry; ``offset`` is the entry's
#: monotonic append count within that CMOB (so staleness can be detected
#: after wrap-around).  A plain tuple: one pointer is recorded per
#: consumption and per SVB hit, squarely on the replay fast path.
CMOBPointer = Tuple[NodeId, int]


@dataclass(slots=True)
class DirectoryEntry:
    """Directory state for one block."""

    state: DirectoryState = DirectoryState.UNCACHED
    owner: Optional[NodeId] = None
    sharers: Set[NodeId] = field(default_factory=set)
    #: Nodes that have written the block at least once (used to classify
    #: cold vs. coherent misses precisely).
    ever_written: bool = False
    #: Most recent ``(node, offset)`` CMOB pointers, newest first (TSE
    #: extension).
    cmob_pointers: List[CMOBPointer] = field(default_factory=list)

    def record_cmob_pointer(self, node: NodeId, offset: int, max_pointers: int) -> None:
        """Insert/refresh a CMOB pointer, keeping at most ``max_pointers``.

        A newer pointer from the same node replaces the old one — the CMOB
        location of the most recent append is the one that starts a useful
        stream.
        """
        pointers = self.cmob_pointers
        for i, pointer in enumerate(pointers):
            if pointer[0] == node:
                del pointers[i]
                break
        pointers.insert(0, (node, offset))
        del pointers[max_pointers:]


class Directory:
    """The distributed directory, indexed by block address.

    A single object models all per-node directory slices; the home node of a
    block is derived from its address so bandwidth/latency accounting knows
    which node the request and reply traverse.
    """

    def __init__(self, num_nodes: int, cmob_pointers_per_block: int = 2) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes
        self.cmob_pointers_per_block = cmob_pointers_per_block
        self._stats = StatsRegistry(prefix="directory")
        self._n_cmob_pointer_updates = 0
        self._entries: Dict[BlockAddress, DirectoryEntry] = {}

    @property
    def stats(self) -> StatsRegistry:
        """Statistics registry, synchronized with the plain-int counters on read."""
        return publish_counters(
            self._stats, {"cmob_pointer_updates": self._n_cmob_pointer_updates}
        )

    def home_of(self, address: BlockAddress) -> NodeId:
        """Home node of a block (low-order address interleaving)."""
        return address % self.num_nodes

    def entry(self, address: BlockAddress) -> DirectoryEntry:
        """Get (or lazily create) the directory entry for a block."""
        entry = self._entries.get(address)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[address] = entry
        return entry

    def lookup(self, address: BlockAddress) -> Optional[DirectoryEntry]:
        """Return the entry if the block has ever been referenced."""
        return self._entries.get(address)

    def num_entries(self) -> int:
        return len(self._entries)

    # -- TSE extension -------------------------------------------------------
    def record_cmob_pointer(self, address: BlockAddress, node: NodeId, offset: int) -> None:
        """Store a CMOB pointer for ``address`` (Section 3.1, step 4)."""
        self.entry(address).record_cmob_pointer(node, offset, self.cmob_pointers_per_block)
        self._n_cmob_pointer_updates += 1

    def cmob_pointers(self, address: BlockAddress) -> List[CMOBPointer]:
        """CMOB pointers for a block, newest first (may be empty)."""
        entry = self._entries.get(address)
        return list(entry.cmob_pointers) if entry is not None else []

    def pointer_storage_bits(self, cmob_capacity: int) -> int:
        """Per-entry CMOB-pointer storage in bits (Section 3.2 formula)."""
        import math

        node_bits = max(1, math.ceil(math.log2(self.num_nodes)))
        offset_bits = max(1, math.ceil(math.log2(max(cmob_capacity, 2))))
        return self.cmob_pointers_per_block * (node_bits + offset_bits)
