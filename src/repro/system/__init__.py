"""System-level simulators: the DSM facade and the timing model."""

from repro.system.dsm import DSMSystem, SystemComparison
from repro.system.timing import TimingResult, TimingSimulator

__all__ = ["TimingSimulator", "TimingResult", "DSMSystem", "SystemComparison"]
