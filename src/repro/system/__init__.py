"""System-level simulators: the DSM facade and the timing model."""

from repro.system.timing import TimingResult, TimingSimulator
from repro.system.dsm import DSMSystem, SystemComparison

__all__ = ["TimingSimulator", "TimingResult", "DSMSystem", "SystemComparison"]
