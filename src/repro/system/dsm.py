"""High-level facade: one object that runs a workload end to end.

:class:`DSMSystem` is the public entry point most library users want: give it
a workload name (or a pre-generated trace) and it runs the functional TSE
analysis and, optionally, the timing comparison, returning plain dataclasses
with the paper's metrics.  The examples and the experiment harness are built
on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.chunk import ChunkedTrace
from repro.common.config import (
    DEFAULT_WARMUP_FRACTION,
    PAPER_LOOKAHEAD,
    SystemConfig,
    TSEConfig,
)
from repro.common.types import AccessTrace
from repro.system.timing import TimingComparison, TimingSimulator
from repro.tse.simulator import TSESimulator, TSEStats
from repro.workloads import get_workload
from repro.workloads.base import WorkloadParams


@dataclass
class SystemComparison:
    """Everything one workload run produces: functional stats plus timing."""

    workload: str
    tse_stats: TSEStats
    timing: Optional[TimingComparison] = None

    @property
    def coverage(self) -> float:
        return self.tse_stats.coverage

    @property
    def discard_rate(self) -> float:
        return self.tse_stats.discard_rate

    @property
    def speedup(self) -> float:
        return self.timing.speedup if self.timing is not None else 1.0

    def summary(self) -> Dict[str, float]:
        out = {
            "workload": self.workload,
            "coverage": self.coverage,
            "discard_rate": self.discard_rate,
            "total_consumptions": self.tse_stats.total_consumptions,
        }
        if self.timing is not None:
            out.update(
                {
                    "speedup": self.speedup,
                    "base_mlp": self.timing.base.consumption_mlp,
                    "full_coverage": self.timing.tse.full_coverage,
                    "partial_coverage": self.timing.tse.partial_coverage,
                }
            )
        return out


class DSMSystem:
    """A 16-node (by default) DSM with the Temporal Streaming Engine attached."""

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        tse_config: Optional[TSEConfig] = None,
    ) -> None:
        self.system = system if system is not None else SystemConfig.isca2005()
        self.tse_config = tse_config if tse_config is not None else TSEConfig.paper_default()

    # ------------------------------------------------------------------ traces
    def generate_trace(
        self,
        workload: str,
        target_accesses: int = 200_000,
        seed: int = 42,
        scale: float = 1.0,
    ) -> ChunkedTrace:
        """Generate a trace for a named workload on this system's node count."""
        params = WorkloadParams(
            num_nodes=self.system.num_nodes,
            seed=seed,
            scale=scale,
            target_accesses=target_accesses,
        )
        return get_workload(workload, params).generate_chunked()

    def tse_config_for(self, workload: str) -> TSEConfig:
        """The paper's TSE configuration with the per-workload lookahead (Table 3)."""
        lookahead = PAPER_LOOKAHEAD.get(workload, self.tse_config.stream_lookahead)
        return self.tse_config.with_(stream_lookahead=lookahead)

    # -------------------------------------------------------------------- runs
    def analyze(
        self,
        trace: AccessTrace,
        tse_config: Optional[TSEConfig] = None,
        warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
        account_traffic: bool = False,
    ) -> TSEStats:
        """Trace-driven TSE analysis (coverage / discards / traffic)."""
        config = tse_config if tse_config is not None else self.tse_config_for(trace.name)
        simulator = TSESimulator(
            trace.num_nodes,
            tse_config=config,
            account_traffic=account_traffic,
            interconnect_config=self.system.interconnect if account_traffic else None,
        )
        return simulator.run(trace, warmup_fraction=warmup_fraction)

    def time(self, trace: AccessTrace, tse_config: Optional[TSEConfig] = None) -> TimingComparison:
        """Timing comparison (base vs. TSE) for one trace."""
        config = tse_config if tse_config is not None else self.tse_config_for(trace.name)
        simulator = TimingSimulator(self.system, config)
        return simulator.compare(trace)

    def run_workload(
        self,
        workload: str,
        target_accesses: int = 200_000,
        seed: int = 42,
        with_timing: bool = True,
        warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    ) -> SystemComparison:
        """End-to-end convenience: generate, analyze, and (optionally) time."""
        trace = self.generate_trace(workload, target_accesses=target_accesses, seed=seed)
        stats = self.analyze(trace, warmup_fraction=warmup_fraction)
        timing = self.time(trace) if with_timing else None
        return SystemComparison(workload=workload, tse_stats=stats, timing=timing)
