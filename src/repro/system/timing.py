"""DSM timing simulation: execution-time breakdown, speedups, timeliness.

Mirrors the paper's methodology split: the functional trace-driven simulator
(:mod:`repro.tse.simulator`) decides *which* misses TSE eliminates, and this
timing model decides *how much time* that saves, by replaying each node's
labelled access sequence through the interval-based processor model with the
Table 1 latencies.

Outputs map directly onto the paper's results:

* Figure 14 (left): normalized execution-time breakdown (busy / other stalls
  / coherent-read stalls) for the base system and TSE;
* Figure 14 (right): TSE speedup over the base system;
* Table 3: consumption MLP in the base system, plus full and partial
  coverage fractions under TSE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.common.chunk import ChunkedTrace
from repro.common.config import SystemConfig, TSEConfig
from repro.common.stats import ratio
from repro.common.types import AccessTrace
from repro.node.latency import LatencyModel
from repro.node.processor import NodeTimingResult, ProcessorModel
from repro.tse.simulator import TSESimulator, TSEStats


@dataclass
class TimingResult:
    """Machine-level timing summary for one configuration (base or TSE)."""

    label: str = ""
    workload: str = ""
    per_node: List[NodeTimingResult] = field(default_factory=list)

    @property
    def busy_cycles(self) -> float:
        return sum(n.busy_cycles for n in self.per_node)

    @property
    def coherent_read_stall_cycles(self) -> float:
        return sum(n.coherent_read_stall_cycles for n in self.per_node)

    @property
    def other_stall_cycles(self) -> float:
        return sum(n.other_stall_cycles for n in self.per_node)

    @property
    def total_cycles(self) -> float:
        return sum(n.total_cycles for n in self.per_node)

    @property
    def execution_cycles(self) -> float:
        """Wall-clock execution time: the slowest node determines the interval."""
        return max((n.total_cycles for n in self.per_node), default=0.0)

    def breakdown(self) -> Dict[str, float]:
        """Normalized execution-time breakdown (Figure 14 left)."""
        total = self.total_cycles
        if total <= 0:
            return {"busy": 0.0, "other_stalls": 0.0, "coherent_read_stalls": 0.0}
        return {
            "busy": self.busy_cycles / total,
            "other_stalls": self.other_stall_cycles / total,
            "coherent_read_stalls": self.coherent_read_stall_cycles / total,
        }

    @property
    def consumption_mlp(self) -> float:
        """Machine-average consumption MLP (Table 3)."""
        area = sum(n.mlp_area for n in self.per_node)
        busy = sum(n.mlp_busy_time for n in self.per_node)
        return ratio(area, busy, default=1.0)

    @property
    def fully_covered(self) -> int:
        return sum(n.fully_covered for n in self.per_node)

    @property
    def partially_covered(self) -> int:
        return sum(n.partially_covered for n in self.per_node)

    @property
    def uncovered(self) -> int:
        return sum(n.uncovered for n in self.per_node)

    @property
    def total_consumptions(self) -> int:
        return self.fully_covered + self.partially_covered + self.uncovered

    @property
    def full_coverage(self) -> float:
        """Fraction of consumptions completely hidden (Table 3 "Full Cov.")."""
        return ratio(self.fully_covered, self.total_consumptions)

    @property
    def partial_coverage(self) -> float:
        """Fraction of consumptions partially hidden (Table 3 "Partial Cov.")."""
        return ratio(self.partially_covered, self.total_consumptions)


class TimingSimulator:
    """Runs the base system and TSE over one trace and compares them."""

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        tse_config: Optional[TSEConfig] = None,
    ) -> None:
        self.system = system if system is not None else SystemConfig.isca2005()
        self.tse_config = tse_config if tse_config is not None else TSEConfig.paper_default()
        self.latency = LatencyModel(self.system)
        self._processor = ProcessorModel(self.system, self.latency)

    # ---------------------------------------------------------------- plumbing
    def _label_trace(
        self, trace: "Union[AccessTrace, ChunkedTrace]", tse_enabled: bool,
        warmup_fraction: float
    ) -> Tuple[TSEStats, Sequence[int], Sequence[int]]:
        """Run the functional simulator to label each access with its outcome.

        A packed :class:`ChunkedTrace` is labelled through the columnar
        replay fast path; the timing walk itself reads the thin object view.
        Label runs are memoized on the trace object, keyed by the exact
        TSE configuration used.  The base-system labeling uses a degenerate
        configuration whose behaviour is independent of the interesting TSE
        knobs (lookahead, SVB size, ...), so every configuration sweep over
        the same trace shares a single base run — and repeated ``compare()``
        calls (Figure 14 + Table 3) reuse both label runs outright.
        """
        if tse_enabled:
            config = self.tse_config
        else:
            # A degenerate TSE that never finds streams behaves as the base
            # system while reusing the same classification machinery.
            config = self.tse_config.with_(
                compared_streams=1,
                cmob_pointers_per_block=1,
                stream_lookahead=0,
                queue_depth=1,
                refill_threshold=1,
            )
        del warmup_fraction  # the timing walk measures the whole trace
        cache: Dict = getattr(trace, "_label_cache", None)
        if cache is None:
            cache = {}
            trace._label_cache = cache  # type: ignore[attr-defined]
        # The trace length guards against AccessTrace.append/extend after a
        # cached label run: a grown trace gets a fresh labeling.
        key = (config, len(trace))
        cached = cache.get(key)
        if cached is None:
            # Outcome labeling needs per-access fill times, which only the
            # exact plane records: pin mode explicitly so an ambient
            # REPRO_FAST_MODE never reaches the timing model.  (Fast-mode
            # sweeps still speed up their functional runs; timing
            # comparisons are exact by construction.)
            simulator = TSESimulator(
                trace.num_nodes, tse_config=config, record_outcomes=True,
                mode="exact",
            )
            stats = simulator.run(trace, warmup_fraction=0.0)
            cached = (stats, simulator.outcome_codes, simulator.outcome_leads)
            cache[key] = cached
        return cached

    def _run_timing(
        self,
        trace: "Union[AccessTrace, ChunkedTrace]",
        codes: Sequence[int],
        leads: Sequence[int],
        tse_enabled: bool,
        label: str,
    ) -> TimingResult:
        per_node_accesses: List[List] = [[] for _ in range(trace.num_nodes)]
        per_node_outcomes: List[List[Tuple[int, int]]] = [[] for _ in range(trace.num_nodes)]
        for access, code, lead in zip(trace.accesses, codes, leads):
            per_node_accesses[access.node].append(access)
            per_node_outcomes[access.node].append((code, lead))
        result = TimingResult(label=label, workload=trace.name)
        for node in range(trace.num_nodes):
            result.per_node.append(
                self._processor.run_node(
                    node, per_node_accesses[node], per_node_outcomes[node], tse_enabled
                )
            )
        return result

    # --------------------------------------------------------------------- API
    def run_base(self, trace: "Union[AccessTrace, ChunkedTrace]") -> TimingResult:
        """Time the baseline system (no TSE) on a trace."""
        _, codes, leads = self._label_trace(trace, tse_enabled=False, warmup_fraction=0.0)
        return self._run_timing(trace, codes, leads, tse_enabled=False, label="base")

    def run_tse(self, trace: "Union[AccessTrace, ChunkedTrace]") -> Tuple[TimingResult, TSEStats]:
        """Time the TSE-equipped system; also returns the functional stats."""
        stats, codes, leads = self._label_trace(trace, tse_enabled=True, warmup_fraction=0.0)
        timing = self._run_timing(trace, codes, leads, tse_enabled=True, label="tse")
        return timing, stats

    def compare(self, trace: "Union[AccessTrace, ChunkedTrace]") -> "TimingComparison":
        """Run base and TSE on the same trace and package the comparison."""
        base = self.run_base(trace)
        tse, functional = self.run_tse(trace)
        return TimingComparison(workload=trace.name, base=base, tse=tse, functional=functional)


@dataclass
class TimingComparison:
    """Base-vs-TSE timing for one workload (one Figure 14 group)."""

    workload: str
    base: TimingResult
    tse: TimingResult
    functional: TSEStats

    @property
    def speedup(self) -> float:
        """TSE speedup over the base system (Figure 14 right)."""
        return ratio(self.base.total_cycles, self.tse.total_cycles, default=1.0)

    def normalized_breakdowns(self) -> Dict[str, Dict[str, float]]:
        """Both breakdowns normalized to the base system's total time."""
        base_total = self.base.total_cycles
        if base_total <= 0:
            return {"base": self.base.breakdown(), "tse": self.tse.breakdown()}
        def scaled(result: TimingResult) -> Dict[str, float]:
            return {
                "busy": result.busy_cycles / base_total,
                "other_stalls": result.other_stall_cycles / base_total,
                "coherent_read_stalls": result.coherent_read_stall_cycles / base_total,
            }
        return {"base": scaled(self.base), "tse": scaled(self.tse)}

    def table3_row(
        self, trace_coverage: Optional[float] = None, lookahead: int = 8
    ) -> Dict[str, float]:
        """One row of Table 3 for this workload."""
        return {
            "workload": self.workload,
            "trace_coverage": trace_coverage if trace_coverage is not None else self.functional.coverage,
            "mlp": self.base.consumption_mlp,
            "lookahead": float(lookahead),
            "full_coverage": self.tse.full_coverage,
            "partial_coverage": self.tse.partial_coverage,
            "speedup": self.speedup,
        }
