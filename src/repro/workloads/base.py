"""Workload base classes, address-space layout helpers and the registry."""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Type

from repro.common.rng import DeterministicRNG
from repro.common.types import (
    TYPE_ATOMIC,
    TYPE_READ,
    TYPE_SPIN_READ,
    TYPE_WRITE,
    AccessTrace,
    BlockAddress,
    NodeId,
)


@dataclass(frozen=True)
class WorkloadParams:
    """Parameters shared by every workload generator.

    Attributes:
        num_nodes: Number of DSM nodes generating accesses (16 in the paper).
        seed: RNG seed; identical parameters + seed give identical traces.
        scale: Relative problem-size multiplier.  1.0 is the repository's
            default scaled-down configuration; larger values grow data-set
            sizes / iteration counts toward the paper's (much larger) inputs.
        target_accesses: Approximate number of accesses to generate; the
            generators stop at the end of the iteration/transaction during
            which the target is crossed.
        quantum: Number of consecutive accesses one node contributes before
            the interleaver switches to the next node (scientific workloads).
    """

    num_nodes: int = 16
    seed: int = 42
    scale: float = 1.0
    target_accesses: int = 200_000
    quantum: int = 8

    def scaled(self, value: int, minimum: int = 1) -> int:
        """Scale an integral size parameter by ``scale``."""
        return max(minimum, int(round(value * self.scale)))

    def with_(self, **kwargs) -> "WorkloadParams":
        return replace(self, **kwargs)


class AddressSpace:
    """Allocates disjoint block-address regions to named data structures.

    Keeping every structure in its own region makes generated traces easy to
    reason about in tests (e.g. "lock blocks never appear as consumptions").
    Region 0 starts at block 1 so that address 0 never appears (it reads as
    "uninitialised" in debugging output).
    """

    def __init__(self) -> None:
        self._next_block: BlockAddress = 1
        self._regions: Dict[str, range] = {}

    def allocate(self, name: str, num_blocks: int) -> range:
        """Allocate ``num_blocks`` contiguous blocks for structure ``name``."""
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        region = range(self._next_block, self._next_block + num_blocks)
        self._regions[name] = region
        self._next_block += num_blocks
        return region

    def region(self, name: str) -> range:
        return self._regions[name]

    @property
    def total_blocks(self) -> int:
        return self._next_block - 1

    def owner_of(self, region_name: str, block: BlockAddress) -> int:
        """Relative index of a block within its region (for partitioning)."""
        region = self._regions[region_name]
        if block not in region:
            raise ValueError(f"block {block} not in region {region_name!r}")
        return block - region.start


def interleave(per_node: List[list], quantum: int) -> Iterator:
    """Round-robin interleave per-node access lists, ``quantum`` at a time.

    Element-type agnostic: works on packed access records (the engine's
    emission path) and on :class:`MemoryAccess` objects alike.

    Approximates the concurrent execution of one phase across the machine:
    all nodes progress together, none races a full phase ahead, and the
    phase ends with an implicit barrier (every list drained).
    """
    quantum = max(1, quantum)
    cursors = [0] * len(per_node)
    remaining = sum(len(accesses) for accesses in per_node)
    while remaining > 0:
        for node_index, accesses in enumerate(per_node):
            cursor = cursors[node_index]
            chunk = accesses[cursor : cursor + quantum]
            if not chunk:
                continue
            yield from chunk
            cursors[node_index] += len(chunk)
            remaining -= len(chunk)


class Workload(abc.ABC):
    """Base class for every workload generator."""

    #: Registry name, e.g. ``"em3d"``; set by subclasses.
    name: str = "workload"
    #: ``"scientific"`` or ``"commercial"``.
    category: str = "scientific"

    def __init__(self, params: Optional[WorkloadParams] = None) -> None:
        self.params = params if params is not None else WorkloadParams()
        self.rng = DeterministicRNG(self.params.seed)
        self.space = AddressSpace()
        #: Per-node retired-instruction counters used for access timestamps.
        self._node_time: List[int] = [0] * self.params.num_nodes

    # ------------------------------------------------------------------- API
    @abc.abstractmethod
    def generate(self) -> AccessTrace:
        """Produce the globally interleaved access trace."""

    # -------------------------------------------------------------- utilities
    #
    # The emitters produce *packed access records* — plain tuples
    # ``(node, block, type_code, pc, timestamp, dependent)`` — which the
    # engine packs straight into :class:`~repro.common.chunk.TraceChunk`
    # columns; the object view (``stream()`` / ``generate()``) wraps the same
    # tuples in :class:`MemoryAccess` lazily, so both paths are bit-identical.
    def _access(
        self,
        node: NodeId,
        address: BlockAddress,
        type_code: int,
        pc: int = 0,
        work: int = 1,
        dependent: int = 0,
    ):
        """Create one packed access record, advancing the node's logical
        clock by ``work`` instructions (memory access + surrounding compute)."""
        times = self._node_time
        timestamp = times[node] + work
        times[node] = timestamp
        return (node, address, type_code, pc, timestamp, dependent)

    def read(self, node: NodeId, address: BlockAddress, pc: int = 0, work: int = 1):
        times = self._node_time
        timestamp = times[node] + work
        times[node] = timestamp
        return (node, address, TYPE_READ, pc, timestamp, 0)

    def dependent_read(self, node: NodeId, address: BlockAddress, pc: int = 0, work: int = 1):
        """A read whose address depends on the previous read's data (pointer
        chase); the timing model serialises these, keeping consumption MLP
        near 1 for the commercial workloads."""
        times = self._node_time
        timestamp = times[node] + work
        times[node] = timestamp
        return (node, address, TYPE_READ, pc, timestamp, 1)

    def write(self, node: NodeId, address: BlockAddress, pc: int = 0, work: int = 1):
        times = self._node_time
        timestamp = times[node] + work
        times[node] = timestamp
        return (node, address, TYPE_WRITE, pc, timestamp, 0)

    def spin_read(self, node: NodeId, address: BlockAddress, pc: int = 0):
        return self._access(node, address, TYPE_SPIN_READ, pc, work=1)

    def atomic(self, node: NodeId, address: BlockAddress, pc: int = 0):
        return self._access(node, address, TYPE_ATOMIC, pc, work=2)

    def _new_trace(self) -> AccessTrace:
        return AccessTrace(num_nodes=self.params.num_nodes, name=self.name)


# --------------------------------------------------------------------- registry
_REGISTRY: Dict[str, Callable[[Optional[WorkloadParams]], Workload]] = {}

#: The paper's three scientific applications plus this repository's
#: sparse-solver extension.
SCIENTIFIC_WORKLOADS = ("em3d", "moldyn", "ocean", "sparse")
#: The paper's four commercial server workloads plus the SPECjbb-like
#: middleware tier extension.
COMMERCIAL_WORKLOADS = ("apache", "db2", "oracle", "zeus", "jbb")
ALL_WORKLOADS = SCIENTIFIC_WORKLOADS + COMMERCIAL_WORKLOADS


def register_workload(name: str):
    """Class decorator registering a workload under ``name``."""

    def decorator(cls: Type[Workload]) -> Type[Workload]:
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def available_workloads() -> List[str]:
    """Names of every registered workload, paper order."""
    ordered = [n for n in ALL_WORKLOADS if n in _REGISTRY]
    extras = sorted(set(_REGISTRY) - set(ordered))
    return ordered + extras


def get_workload(name: str, params: Optional[WorkloadParams] = None) -> Workload:
    """Instantiate a workload generator by name."""
    # Import lazily so the registry is populated even when callers import
    # only this module.
    from repro import workloads as _  # noqa: F401

    try:
        cls = _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        ) from exc
    return cls(params)
