"""OLTP workloads: TPC-C-like transaction processing on DB2- and Oracle-like engines.

The commercial workloads' coherent read misses come from *migratory* shared
data: a transaction running on one node reads and updates a set of related
database structures (a district's rows, stock entries, order queues), and
the next transaction touching that data runs on a different node.  Because
the data structures are stable, the per-district access *template* repeats —
exactly the temporal address correlation TSE exploits — but a sizeable
fraction of misses comes from irregular structures (buffer-pool metadata,
latches, free lists) whose access order does not repeat.

Workload Engine v2 composition (see EXPERIMENTS.md for calibration targets):

* ``rows_short`` / ``rows_long`` — two :class:`TemplatePool` instances for
  district row templates.  The bimodal length split is what calibrates
  Figure 13: short-template walks (new-order style, a handful of rows)
  realize streams under eight blocks, long-template walks (payment/stock
  scans over 2-4 related tables) the 10-30-block mid-range.  Reads are
  ``dependent`` (rows are reached through pointer chains, Section 5.7),
  which keeps consumption MLP near 1.
* ``scan`` — a :class:`StridedSweep` over order lines: rare delivery-style
  transactions scanning a long run (the commercial CDF's upper tail).
* ``hot`` — a :class:`ZipfChurnPool` of buffer-pool headers / latch words
  (uncorrelated consumptions).
* ``index`` — a :class:`ReadOnlyRegion` B-tree (busy work), ``locks`` — a
  per-district :class:`LockSite`, plus :class:`PrivateScratch` sort heaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.chunk import PackedAccess
from repro.workloads.base import register_workload
from repro.workloads.engine import RequestWorkload
from repro.workloads.primitives import (
    LockSite,
    PrivateScratch,
    ReadOnlyRegion,
    StridedSweep,
    TemplatePool,
    ZipfChurnPool,
)


@dataclass(frozen=True)
class OLTPProfile:
    """Tuning knobs that differentiate the database engines."""

    #: Number of warehouses; each warehouse has 10 districts (TPC-C).
    warehouses: int = 8
    #: Short (new-order-style) row templates.
    short_min: int = 4
    short_max: int = 8
    #: Long (payment/stock-level-style) row templates.
    long_min: int = 14
    long_max: int = 30
    #: Fraction of transactions walking a short template.
    short_fraction: float = 0.62
    template_write_fraction: float = 0.9
    #: Zipf skew of district selection.
    district_zipf_alpha: float = 0.6
    #: Uncorrelated hot-structure churn per transaction.
    hot_reads_min: int = 6
    hot_reads_max: int = 14
    hot_writes: int = 2
    hot_region_blocks: int = 4096
    hot_pool_depth: int = 256
    #: Index levels read per transaction (read-only busy work).
    index_levels: int = 3
    #: Local (per-node) private work blocks touched per transaction.
    private_accesses: int = 12
    #: Probability a lock acquire finds the lock contended (adds spin reads).
    lock_contention: float = 0.08
    #: Long "delivery-style" transactions scanning many order lines, as a
    #: fraction of all transactions (the long-stream tail of Figure 13).
    long_txn_fraction: float = 0.03
    long_txn_scan_blocks: int = 160


# The two engine presets are calibrated so trace coverage at the paper's TSE
# configuration (two compared streams, lookahead 8) lands near Table 3's
# values (DB2 ~0.60, Oracle ~0.53) and the short-stream share of coverage in
# Figure 13's 30-45 % band (see EXPERIMENTS.md for measured numbers).
DB2_PROFILE = OLTPProfile(
    short_fraction=0.68,
    long_min=16,
    long_max=26,
    hot_reads_min=6,
    hot_reads_max=12,
    hot_writes=2,
    long_txn_fraction=0.02,
)

ORACLE_PROFILE = OLTPProfile(
    short_fraction=0.70,
    long_min=14,
    long_max=26,
    hot_reads_min=8,
    hot_reads_max=14,
    hot_writes=3,
    long_txn_fraction=0.025,
)


class OLTPWorkload(RequestWorkload):
    """Generic TPC-C-like generator parameterised by an :class:`OLTPProfile`."""

    category = "commercial"
    profile: OLTPProfile = OLTPProfile()

    def build(self) -> None:
        profile = self.profile
        num_districts = profile.warehouses * 10
        # Rows of one district are *not* contiguous in physical memory (heap
        # pages interleave rows of many districts): TemplatePool draws every
        # template from a shuffled pool, which is what defeats stride
        # prefetchers on OLTP (Figure 12) while leaving temporal correlation
        # intact.
        self._rows_short = TemplatePool(
            "rows_short",
            self.space,
            self.rng.fork(10),
            count=num_districts,
            length_min=profile.short_min,
            length_max=profile.short_max,
            write_fraction=profile.template_write_fraction,
            zipf_alpha=profile.district_zipf_alpha,
            read_work=1500,
            write_work=600,
            pc_base=5,
        )
        self._rows_long = TemplatePool(
            "rows_long",
            self.space,
            self.rng.fork(14),
            count=num_districts,
            length_min=profile.long_min,
            length_max=profile.long_max,
            write_fraction=profile.template_write_fraction,
            zipf_alpha=profile.district_zipf_alpha,
            read_work=1500,
            write_work=600,
            pc_base=12,
        )
        self._hot = ZipfChurnPool(
            "hot",
            self.space,
            self.rng.fork(11),
            region_blocks=profile.hot_region_blocks,
            pool_depth=profile.hot_pool_depth,
            reads_min=profile.hot_reads_min,
            reads_max=profile.hot_reads_max,
            writes=profile.hot_writes,
            read_work=1800,
            write_work=600,
            pc_base=7,
        )
        self._index = ReadOnlyRegion(
            "index",
            self.space,
            self.rng.fork(12),
            blocks=1 + 64 + 1024,
            read_work=1200,
            pc_base=1,
        )
        self._scan = StridedSweep(
            "scan",
            self.space,
            self.rng.fork(15),
            blocks=profile.long_txn_scan_blocks * 8,
            scan_blocks=profile.long_txn_scan_blocks,
            write_fraction=0.5,
            read_work=450,
            write_work=450,
            pc_base=10,
        )
        self._locks = LockSite(
            "locks",
            self.space,
            self.rng.fork(13),
            count=2 * num_districts,
            contention=profile.lock_contention,
            pc_base=3,
        )
        self._scratch = PrivateScratch(
            "private",
            self.space,
            self.rng.fork(16),
            num_nodes=self.params.num_nodes,
            blocks_per_node=512,
            accesses=profile.private_accesses,
            work=900,
            pc_base=9,
        )
        self._num_districts = num_districts

    def request(self, node: int, rng) -> List[PackedAccess]:
        profile = self.profile
        out: List[PackedAccess] = []
        short = rng.bernoulli(profile.short_fraction)
        pool = self._rows_short if short else self._rows_long
        district = pool.pick(rng)
        # Short- and long-template districts are distinct objects, so each
        # gets its own lock word (the lock site holds 2 * num_districts).
        lock = district if short else district + self._num_districts
        self._index.lookup(self, node, rng, out, levels=profile.index_levels)
        self._locks.acquire(self, node, rng, out, index=lock)
        pool.walk(self, node, rng, out, index=district)
        self._hot.churn(self, node, rng, out)
        self._scratch.work_on(self, node, rng, out)
        if rng.bernoulli(profile.long_txn_fraction):
            self._scan.scan(self, node, rng, out)
        self._locks.release(self, node, out, index=lock)
        return out


@register_workload("db2")
class DB2Workload(OLTPWorkload):
    """TPC-C on a DB2-like engine (longer templates, less irregular churn)."""

    profile = DB2_PROFILE


@register_workload("oracle")
class OracleWorkload(OLTPWorkload):
    """TPC-C on an Oracle-like engine (shorter templates, more churn)."""

    profile = ORACLE_PROFILE
