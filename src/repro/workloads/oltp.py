"""OLTP workloads: TPC-C-like transaction processing on DB2- and Oracle-like engines.

The commercial workloads' coherent read misses come from *migratory* shared
data: a transaction running on one node reads and updates a set of related
database structures (a district's rows, stock entries, order queues), and the
next transaction touching that data runs on a different node.  Because the
data structures are stable, the per-district access *template* repeats, which
is exactly the temporal address correlation TSE exploits — but unlike the
scientific codes, a sizeable fraction of misses comes from irregular
structures (buffer-pool metadata, latches, free lists) whose access order
does not repeat.

The generator mixes four access classes per transaction:

* **index walk** — root/branch/leaf reads of a B-tree; read-only after
  warm-up so they produce no consumptions (they model the busy work between
  misses).
* **district template** — the migratory read-modify-write sequence over the
  district's row blocks; produces *correlated* consumptions.
* **hot-structure churn** — reads and writes of randomly chosen blocks in a
  shared region (buffer-pool headers, latch words); produces *uncorrelated*
  consumptions.
* **synchronisation** — lock acquire/release with occasional spin reads,
  excluded from consumptions by the spin filter.

The DB2 and Oracle presets differ in template length, hot-churn intensity
and client concurrency, tuned so the measured correlated fraction and trace
coverage land near the paper's Figure 6 / Table 3 values (DB2 ≈ 60 %,
Oracle ≈ 53 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.types import AccessTrace, AccessType, MemoryAccess
from repro.workloads.base import Workload, WorkloadParams, register_workload


@dataclass(frozen=True)
class OLTPProfile:
    """Tuning knobs that differentiate the database engines."""

    #: Number of warehouses; each warehouse has 10 districts (TPC-C).
    warehouses: int = 8
    #: Blocks per district template (rows touched by a transaction).
    template_min: int = 8
    template_max: int = 24
    #: Probability that a template block is written (made migratory).
    template_write_fraction: float = 0.85
    #: Probability that a template access is skipped / reordered locally
    #: (models control-flow variation between transactions).
    template_noise: float = 0.04
    #: Uncorrelated hot-structure reads per transaction.
    hot_reads_min: int = 2
    hot_reads_max: int = 8
    #: Uncorrelated hot-structure writes per transaction.
    hot_writes: int = 2
    #: Size of the hot shared-structure region in blocks.
    hot_region_blocks: int = 4096
    #: Depth of the recently-written pool that uncorrelated reads sample from.
    hot_pool_depth: int = 256
    #: Index levels read per transaction (read-only busy work).
    index_levels: int = 3
    #: Local (per-node) private work blocks touched per transaction.
    private_accesses: int = 12
    #: Zipf skew of district selection.
    district_zipf_alpha: float = 0.6
    #: Probability a lock acquire finds the lock contended (adds spin reads).
    lock_contention: float = 0.08
    #: Long "delivery-style" transactions scanning many rows, as a fraction
    #: of all transactions (produces the long-stream tail of Figure 13).
    long_txn_fraction: float = 0.03
    long_txn_scan_blocks: int = 160


# The two engine presets are calibrated so trace coverage at the paper's TSE
# configuration (two compared streams, lookahead 8) lands near Table 3's
# values: DB2 ~0.60, Oracle ~0.53 (see EXPERIMENTS.md for measured numbers).
DB2_PROFILE = OLTPProfile(
    template_min=10,
    template_max=28,
    template_write_fraction=0.9,
    template_noise=0.06,
    hot_reads_min=11,
    hot_reads_max=20,
    hot_writes=2,
    long_txn_fraction=0.04,
)

ORACLE_PROFILE = OLTPProfile(
    template_min=8,
    template_max=22,
    template_write_fraction=0.85,
    template_noise=0.07,
    hot_reads_min=12,
    hot_reads_max=20,
    hot_writes=3,
    long_txn_fraction=0.03,
)


class OLTPWorkload(Workload):
    """Generic TPC-C-like generator parameterised by an :class:`OLTPProfile`."""

    category = "commercial"
    profile: OLTPProfile = OLTPProfile()

    def __init__(self, params: Optional[WorkloadParams] = None) -> None:
        super().__init__(params)
        self._build_database()

    # --------------------------------------------------------------- building
    def _build_database(self) -> None:
        profile = self.profile
        rng = self.rng.fork(10)
        num_districts = profile.warehouses * 10
        self._district_templates: List[List[int]] = []
        self._district_locks: List[int] = []

        # Row blocks: one contiguous template region per district.
        total_template_blocks = 0
        template_lengths = []
        for _ in range(num_districts):
            length = rng.randint(profile.template_min, profile.template_max)
            template_lengths.append(length)
            total_template_blocks += length
        # Rows of one district are *not* contiguous in physical memory (heap
        # pages interleave rows of many districts), so template addresses are
        # drawn from a shuffled pool — this is what defeats stride prefetchers
        # on OLTP (Figure 12) while leaving temporal correlation intact.
        rows = self.space.allocate("rows", total_template_blocks)
        shuffled_blocks = list(rows)
        rng.shuffle(shuffled_blocks)
        cursor = 0
        for length in template_lengths:
            self._district_templates.append(shuffled_blocks[cursor : cursor + length])
            cursor += length

        locks = self.space.allocate("locks", num_districts)
        self._district_locks = list(locks)

        self._hot_region = self.space.allocate("hot", profile.hot_region_blocks)
        # B-tree index: root + branches + leaves, read-only after warm-up.
        self._index_region = self.space.allocate("index", 1 + 64 + 1024)
        # Order lines scanned by long transactions (append-mostly).
        self._scan_region = self.space.allocate("scan", profile.long_txn_scan_blocks * 8)
        # Private per-node working storage (sort heaps, session state).
        self._private_regions = [
            self.space.allocate(f"private{n}", 512) for n in range(self.params.num_nodes)
        ]
        self._num_districts = num_districts
        #: Recently written hot blocks; uncorrelated reads sample from here.
        self._recent_hot_writes: List[int] = []

    # ----------------------------------------------------------- access pieces
    def _index_walk(self, node: int, rng, out: List[MemoryAccess]) -> None:
        """Read-only B-tree descent (no consumptions after warm-up)."""
        region = self._index_region
        out.append(self.read(node, region.start, work=1200))  # root
        branch = region.start + 1 + rng.randrange(64)
        out.append(self.read(node, branch, pc=1, work=1200))
        leaf = region.start + 1 + 64 + rng.randrange(1024)
        out.append(self.read(node, leaf, pc=2, work=1200))

    def _acquire_lock(self, node: int, district: int, rng, out: List[MemoryAccess]) -> None:
        lock_block = self._district_locks[district]
        if rng.bernoulli(self.profile.lock_contention):
            for _ in range(rng.randint(1, 4)):
                out.append(self.spin_read(node, lock_block))
        out.append(self.atomic(node, lock_block, pc=3))

    def _release_lock(self, node: int, district: int, out: List[MemoryAccess]) -> None:
        out.append(self.atomic(node, self._district_locks[district], pc=4))

    def _district_work(self, node: int, district: int, rng, out: List[MemoryAccess]) -> None:
        """The migratory template: read (and mostly write) the district's rows.

        Reads are marked ``dependent`` because database row accesses form
        long pointer chains (Section 5.7 / [27]): the next row address comes
        from the previous row's contents, which keeps consumption MLP low.
        """
        profile = self.profile
        template = self._district_templates[district]
        for block in template:
            if rng.bernoulli(profile.template_noise):
                continue  # occasional skipped row (control-flow variation)
            out.append(
                MemoryAccess(
                    node=node,
                    address=block,
                    access_type=AccessType.READ,
                    pc=5,
                    timestamp=self._bump(node, 1500),
                    dependent=True,
                )
            )
            if rng.bernoulli(profile.template_write_fraction):
                out.append(self.write(node, block, pc=6, work=600))

    def _hot_churn(self, node: int, rng, out: List[MemoryAccess]) -> None:
        """Irregular shared-structure accesses (uncorrelated consumptions).

        Reads sample from the pool of *recently written* hot blocks (buffer
        pool headers, latch words, free-list heads), so they almost always
        incur coherent read misses, but in an order unrelated to any prior
        consumer's order — the uncorrelated tail of Figure 6.
        """
        profile = self.profile
        reads = rng.randint(profile.hot_reads_min, profile.hot_reads_max)
        for _ in range(reads):
            if self._recent_hot_writes:
                block = self._recent_hot_writes[rng.randrange(len(self._recent_hot_writes))]
            else:
                block = self._hot_region.start + rng.randrange(len(self._hot_region))
            out.append(
                MemoryAccess(
                    node=node,
                    address=block,
                    access_type=AccessType.READ,
                    pc=7,
                    timestamp=self._bump(node, 1800),
                    dependent=True,
                )
            )
        for _ in range(profile.hot_writes):
            block = self._hot_region.start + rng.randrange(len(self._hot_region))
            out.append(self.write(node, block, pc=8, work=600))
            self._recent_hot_writes.append(block)
            if len(self._recent_hot_writes) > profile.hot_pool_depth:
                self._recent_hot_writes.pop(0)

    def _private_work(self, node: int, rng, out: List[MemoryAccess]) -> None:
        region = self._private_regions[node]
        for _ in range(self.profile.private_accesses):
            block = region.start + rng.randrange(len(region))
            if rng.bernoulli(0.5):
                out.append(self.read(node, block, pc=9, work=900))
            else:
                out.append(self.write(node, block, pc=9, work=900))

    def _long_scan(self, node: int, rng, out: List[MemoryAccess]) -> None:
        """Delivery-style transaction scanning a long run of order lines."""
        start = rng.randrange(len(self._scan_region) - self.profile.long_txn_scan_blocks)
        base = self._scan_region.start + start
        for offset in range(self.profile.long_txn_scan_blocks):
            block = base + offset
            out.append(self.read(node, block, pc=10, work=450))
            if rng.bernoulli(0.5):
                out.append(self.write(node, block, pc=11, work=450))

    def _bump(self, node: int, work: int) -> int:
        self._node_time[node] += work
        return self._node_time[node]

    # -------------------------------------------------------------- generation
    def _transaction(self, node: int, rng) -> List[MemoryAccess]:
        out: List[MemoryAccess] = []
        district = rng.zipf(self._num_districts, alpha=self.profile.district_zipf_alpha)
        self._index_walk(node, rng, out)
        self._acquire_lock(node, district, rng, out)
        self._district_work(node, district, rng, out)
        self._hot_churn(node, rng, out)
        self._private_work(node, rng, out)
        if rng.bernoulli(self.profile.long_txn_fraction):
            self._long_scan(node, rng, out)
        self._release_lock(node, district, out)
        return out

    def generate(self) -> AccessTrace:
        trace = self._new_trace()
        rng = self.rng.fork(11)
        num_cpus = self.params.num_nodes
        node = 0
        while len(trace) < self.params.target_accesses:
            # Transactions are dispatched round-robin with jitter, so
            # consecutive transactions on a hot district land on different
            # nodes (migratory sharing).
            node = (node + 1 + rng.randrange(3)) % num_cpus
            trace.extend(self._transaction(node, rng))
        return trace


@register_workload("db2")
class DB2Workload(OLTPWorkload):
    """TPC-C on a DB2-like engine (longer templates, less irregular churn)."""

    profile = DB2_PROFILE


@register_workload("oracle")
class OracleWorkload(OLTPWorkload):
    """TPC-C on an Oracle-like engine (shorter templates, more churn)."""

    profile = ORACLE_PROFILE
