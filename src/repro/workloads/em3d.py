"""em3d: electromagnetic wave propagation on a bipartite graph.

The Split-C em3d kernel ([6] in the paper) alternates two phases per
iteration: every E node recomputes its value from the H nodes it depends on,
then every H node recomputes from its E dependencies.  The dependency graph
is built once; a fraction of each node's dependencies live on remote CPUs
("15 % remote" in Table 2), so every iteration each CPU re-reads exactly the
same remote blocks in exactly the same order — the canonical producer/
consumer pattern with near-perfect temporal address correlation and very
long streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.types import AccessTrace, MemoryAccess
from repro.workloads.base import Workload, WorkloadParams, register_workload


@dataclass
class _GraphNode:
    """One em3d graph node: the block holding its value plus its dependencies."""

    block: int
    owner: int
    dependencies: List[int]


@register_workload("em3d")
class Em3dWorkload(Workload):
    """Scaled-down em3d trace generator.

    Table 2 uses 400 K graph nodes with degree 2 and 15 % remote
    dependencies; the default here is 8 K nodes (scaled by
    ``params.scale``), which preserves the per-iteration sharing structure
    while keeping pure-Python runs fast.
    """

    category = "scientific"

    #: Graph nodes across the whole machine at scale = 1.0.
    BASE_GRAPH_NODES = 8192
    #: Out-degree of each graph node (Table 2: degree 2).
    DEGREE = 2
    #: Fraction of dependencies that live on a remote CPU (Table 2: 15 %).
    REMOTE_FRACTION = 0.15
    #: Remote dependencies are drawn from CPUs within this distance of the
    #: owner (Table 2: span 5), which keeps the number of distinct remote
    #: readers of any one block small, as in the real kernel.
    SPAN = 5
    #: Instruction gap charged per dependency read (compute between loads).
    WORK_PER_READ = 22

    def __init__(self, params: Optional[WorkloadParams] = None) -> None:
        super().__init__(params)
        self._graph: List[_GraphNode] = []
        self._build_graph()

    # --------------------------------------------------------------- building
    def _build_graph(self) -> None:
        """Build a bipartite E/H graph.

        E nodes occupy even indices within each CPU's partition and H nodes
        odd indices; E nodes depend only on H nodes and vice versa, so a
        phase never writes the blocks it reads (the kernel's BSP structure).
        """
        num_cpus = self.params.num_nodes
        total_nodes = self.params.scaled(self.BASE_GRAPH_NODES, minimum=num_cpus * 16)
        # Round to a multiple of 2 * CPU count so ownership and the E/H split
        # are balanced.
        total_nodes -= total_nodes % (2 * num_cpus)
        per_cpu = total_nodes // num_cpus
        region = self.space.allocate("graph", total_nodes)
        rng = self.rng.fork(1)

        def pick_dependency(owner: int, want_h: bool) -> int:
            """Pick a dependency index of the requested parity (H = odd)."""
            if rng.bernoulli(self.REMOTE_FRACTION) and num_cpus > 1:
                offset = rng.randint(1, min(self.SPAN, num_cpus - 1))
                cpu = (owner + offset) % num_cpus
            else:
                cpu = owner
            slot = rng.randrange(per_cpu // 2) * 2 + (1 if want_h else 0)
            return cpu * per_cpu + slot

        for index in range(total_nodes):
            owner = index // per_cpu
            is_e_node = (index % 2) == 0
            dependencies = [
                region.start + pick_dependency(owner, want_h=is_e_node)
                for _ in range(self.DEGREE)
            ]
            self._graph.append(
                _GraphNode(block=region.start + index, owner=owner, dependencies=dependencies)
            )
        self._per_cpu = per_cpu

    # -------------------------------------------------------------- generation
    def _phase(self, node_slice: Sequence[_GraphNode]) -> List[List[MemoryAccess]]:
        """One phase: every CPU updates its nodes in ``node_slice`` order."""
        per_node: List[List[MemoryAccess]] = [[] for _ in range(self.params.num_nodes)]
        for graph_node in node_slice:
            cpu = graph_node.owner
            for dep in graph_node.dependencies:
                per_node[cpu].append(self.read(cpu, dep, work=self.WORK_PER_READ))
            per_node[cpu].append(self.write(cpu, graph_node.block, work=10))
        return per_node

    def generate(self) -> AccessTrace:
        trace = self._new_trace()
        e_nodes = [n for i, n in enumerate(self._graph) if i % 2 == 0]
        h_nodes = [n for i, n in enumerate(self._graph) if i % 2 == 1]
        while len(trace) < self.params.target_accesses:
            # E phase, barrier, H phase, barrier — matching the kernel's
            # alternating structure.
            self.interleave_round(self._phase(e_nodes), trace)
            self.interleave_round(self._phase(h_nodes), trace)
        return trace

    @property
    def iterations_generated(self) -> float:
        """Approximate iteration count implied by the target access budget."""
        accesses_per_iteration = len(self._graph) * (self.DEGREE + 1)
        return self.params.target_accesses / accesses_per_iteration
