"""em3d: electromagnetic wave propagation on a bipartite graph.

The Split-C em3d kernel ([6] in the paper) alternates two phases per
iteration: every E node recomputes its value from the H nodes it depends on,
then every H node recomputes from its E dependencies.  The dependency graph
is built once, so every iteration each CPU re-reads exactly the same remote
blocks in exactly the same order — the canonical producer/consumer pattern
with near-perfect temporal address correlation and very long streams.

Workload Engine v2 expresses this with two :class:`PartitionedSweep`
primitives (the E and H field arrays).  Each sweep slices every owner's
shared blocks among its remote readers so that **every block has exactly one
remote consumer**: the directory's two CMOB pointers for any block therefore
always name the same node's consecutive iterations, the two compared streams
agree over the whole sequence, and realized TSE streams run to the length of
a CPU's per-phase remote read sequence (hundreds of blocks) — the scientific
curve of Figure 13.  (The v1 generator drew dependencies at random, which
gave some blocks several consumers with different orders; the resulting
stream-pair disagreements stalled queues after a handful of hits and pushed
em3d's short-stream share *above* the commercial workloads.)
"""

from __future__ import annotations

from typing import Iterator, List

from repro.common.chunk import PackedAccess
from repro.workloads.base import register_workload
from repro.workloads.engine import PhasedWorkload
from repro.workloads.primitives import PartitionedSweep


@register_workload("em3d")
class Em3dWorkload(PhasedWorkload):
    """Scaled-down em3d trace generator.

    Table 2 uses 400 K graph nodes with degree 2; the default here keeps a
    few hundred shared blocks per CPU per field (scaled by ``params.scale``),
    which preserves the per-iteration sharing structure while keeping
    pure-Python runs fast.
    """

    category = "scientific"

    #: Field-array blocks owned by each CPU, per field, at scale = 1.0.
    BASE_BLOCKS_PER_NODE = 320
    #: Fraction of each partition re-read remotely every iteration ("15 %
    #: remote" in Table 2 refers to dependencies; the shared sub-partition
    #: here is what those dependencies dereference).
    REMOTE_FRACTION = 0.8
    #: Remote readers are drawn from CPUs within this distance of the owner
    #: (Table 2: span 5).
    SPAN = 5
    #: Instruction gap charged per dependency read (compute between loads).
    WORK_PER_READ = 22

    def build(self) -> None:
        blocks_per_node = self.params.scaled(self.BASE_BLOCKS_PER_NODE, minimum=32)
        common = dict(
            num_nodes=self.params.num_nodes,
            blocks_per_node=blocks_per_node,
            reader_offsets=(self.SPAN - 2,),
            remote_fraction=self.REMOTE_FRACTION,
            read_work=self.WORK_PER_READ,
            write_work=10,
            local_reads_per_remote=1,
            local_read_work=20,
        )
        self._h_field = PartitionedSweep("h_field", self.space, self.rng.fork(1), **common)
        self._e_field = PartitionedSweep("e_field", self.space, self.rng.fork(2), **common)

    def iteration(self, index: int, rng) -> Iterator[List[List[PackedAccess]]]:
        # E phase: read remote H dependencies, write own E values.
        yield self._merge(self._h_field.read_phase(self), self._e_field.write_phase(self))
        # H phase: read remote E dependencies, write own H values.
        yield self._merge(self._e_field.read_phase(self), self._h_field.write_phase(self))

    @staticmethod
    def _merge(
        reads: List[List[PackedAccess]], writes: List[List[PackedAccess]]
    ) -> List[List[PackedAccess]]:
        """One phase's per-node lists: each CPU's reads, then its writes."""
        return [r + w for r, w in zip(reads, writes)]
