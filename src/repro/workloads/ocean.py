"""ocean: blocked current simulation on a regular grid (SPLASH-2).

Ocean partitions a square grid over the CPUs by rows.  Each relaxation step
reads the boundary rows of the neighbouring partitions — a *burst* of
coherent read misses issued back to back (ocean blocks its computation,
which groups consumptions into bursts; Table 3 measures an MLP of 6.6) —
then sweeps the interior, and finally rewrites the partition's own boundary
rows that its neighbours will read next step.

Workload Engine v2 expresses each work grid as a :class:`PartitionedSweep`
whose shared sub-partition is the two boundary rows, read by the two
neighbouring CPUs (``reader_offsets=(1, -1)``).  Because the solver
alternates between its work arrays, a stream that reaches the end of one
grid's boundary sequence continues seamlessly into the other grid's — the
blocks it prefetches across the step boundary were produced at the end of
the *previous* step and stay valid — so ocean realizes the longest streams
of the suite (thousands of blocks), matching its Figure 13 curve.  What
limits TSE for ocean in the paper is *timeliness* (the bursts are
bandwidth-bound), which the timing model reproduces.

SPLASH-2 stores the grid as 4-D arrays, so a neighbour's boundary row is not
a unit-stride run of blocks; the sweep's fixed permutation models that
layout, which keeps stride prefetchers from covering ocean (Figure 12).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.common.chunk import PackedAccess
from repro.workloads.base import register_workload
from repro.workloads.engine import PhasedWorkload
from repro.workloads.primitives import PartitionedSweep


@register_workload("ocean")
class OceanWorkload(PhasedWorkload):
    """Scaled-down ocean trace generator.

    Table 2 uses a 514x514 grid; the default here is expressed directly in
    blocks: each CPU owns ``rows_per_cpu`` rows of ``blocks_per_row`` blocks
    (scaled by ``params.scale``).  The shared boundary is modelled as a
    two-row band at the start of each partition, split between the two
    neighbouring CPUs (``reader_offsets=(1, -1)``) — which boundary blocks
    sit where in the partition does not matter to the sharing structure,
    only that each CPU exchanges one row's worth with each neighbour.
    """

    category = "scientific"

    BASE_BLOCKS_PER_ROW = 64
    BASE_ROWS_PER_CPU = 10
    #: Number of work grids the solver alternates between (ocean uses
    #: several work arrays; two capture the alternation without exploding
    #: the footprint).
    NUM_GRIDS = 2
    #: Boundary reads are issued back to back (tight copy loop).
    BOUNDARY_WORK = 24
    INTERIOR_WORK = 30

    def build(self) -> None:
        self.blocks_per_row = self.params.scaled(self.BASE_BLOCKS_PER_ROW, minimum=8)
        self.rows_per_cpu = self.params.scaled(self.BASE_ROWS_PER_CPU, minimum=4)
        blocks_per_node = self.blocks_per_row * self.rows_per_cpu
        # The shared sub-partition is the two boundary rows of each CPU,
        # read by the partitions directly above and below.
        boundary_fraction = 2.0 * self.blocks_per_row / blocks_per_node
        self._grids = [
            PartitionedSweep(
                f"grid{g}",
                self.space,
                self.rng.fork(10 + g),
                num_nodes=self.params.num_nodes,
                blocks_per_node=blocks_per_node,
                reader_offsets=(1, -1),
                remote_fraction=boundary_fraction,
                read_work=self.BOUNDARY_WORK,
                write_work=self.BOUNDARY_WORK,
                # The interior sweep between boundary reads (reads of the
                # CPU's own rows; local after the first step).
                local_reads_per_remote=2,
                local_read_work=self.INTERIOR_WORK,
                # Only a sample of interior rows is rewritten per step, which
                # keeps trace volume proportional to sharing (the interior is
                # coherence-quiet anyway).
                interior_rewrite_stride=4,
            )
            for g in range(self.NUM_GRIDS)
        ]

    def iteration(self, index: int, rng) -> Iterator[List[List[PackedAccess]]]:
        # One relaxation step per grid, alternating: boundary exchange +
        # interior sweep (reads), then rewrite the own partition for the
        # next step (writes).
        for grid in self._grids:
            reads = grid.read_phase(self)
            writes = grid.write_phase(self)
            yield [r + w for r, w in zip(reads, writes)]
