"""ocean: blocked current simulation on a regular grid (SPLASH-2).

Ocean partitions a square grid over the CPUs by rows.  Each relaxation step
reads the boundary rows of the neighbouring partitions — a *burst* of
coherent read misses issued back to back (ocean blocks its computation, which
groups consumptions into bursts; Table 3 measures an MLP of 6.6) — then
sweeps the interior, and finally writes the partition's own boundary rows
that its neighbours will read next step.

The boundary rows are re-read in the same order every step, so temporal
correlation is near perfect; what limits TSE for ocean in the paper is
*timeliness* (the bursts are bandwidth-bound), which the timing model
reproduces.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.types import AccessTrace, MemoryAccess
from repro.workloads.base import Workload, WorkloadParams, register_workload


@register_workload("ocean")
class OceanWorkload(Workload):
    """Scaled-down ocean trace generator.

    Table 2 uses a 514x514 grid; the default here is a 258x258-equivalent
    partitioning (scaled by ``params.scale``) expressed directly in blocks:
    each CPU owns ``rows_per_cpu`` rows of ``blocks_per_row`` blocks.
    """

    category = "scientific"

    BASE_BLOCKS_PER_ROW = 64
    BASE_ROWS_PER_CPU = 16
    #: Number of grids the solver sweeps per step (ocean uses several work
    #: arrays; two capture the alternation without exploding the footprint).
    NUM_GRIDS = 2
    #: Interior work is mostly local; only this fraction of interior rows is
    #: touched per step to keep trace volume proportional to sharing.
    INTERIOR_SAMPLING = 0.25
    #: Boundary reads are issued back to back (tight copy loop).
    BOUNDARY_WORK = 24
    INTERIOR_WORK = 30

    def __init__(self, params: Optional[WorkloadParams] = None) -> None:
        super().__init__(params)
        self.blocks_per_row = self.params.scaled(self.BASE_BLOCKS_PER_ROW, minimum=8)
        self.rows_per_cpu = self.params.scaled(self.BASE_ROWS_PER_CPU, minimum=4)
        num_cpus = self.params.num_nodes
        total_rows = self.rows_per_cpu * num_cpus
        self._grids = [
            self.space.allocate(f"grid{g}", total_rows * self.blocks_per_row)
            for g in range(self.NUM_GRIDS)
        ]

    # ---------------------------------------------------------------- geometry
    def _row_blocks(self, grid: range, row: int) -> List[int]:
        """Blocks of one grid row, in traversal order.

        SPLASH-2 ocean stores the grid as 4-D arrays so each partition is
        contiguous; a neighbour's boundary row is therefore *not* a
        unit-stride run of blocks.  The fixed interleaved permutation below
        models that layout, which is what keeps stride prefetchers from
        covering ocean (Figure 12) while TSE's address streams are unaffected.
        """
        start = grid.start + row * self.blocks_per_row
        contiguous = list(range(start, start + self.blocks_per_row))
        stride = self._permutation_stride(self.blocks_per_row)
        return [contiguous[(i * stride) % self.blocks_per_row] for i in range(self.blocks_per_row)]

    @staticmethod
    def _permutation_stride(length: int) -> int:
        """Smallest stride >= 5 coprime with ``length`` (full permutation)."""
        import math

        for candidate in range(5, length):
            if math.gcd(candidate, length) == 1:
                return candidate
        return 1

    def _first_row_of(self, cpu: int) -> int:
        return cpu * self.rows_per_cpu

    def _last_row_of(self, cpu: int) -> int:
        return (cpu + 1) * self.rows_per_cpu - 1

    # -------------------------------------------------------------- generation
    def _relaxation_step(self, grid: range, rng) -> List[List[MemoryAccess]]:
        per_node: List[List[MemoryAccess]] = [[] for _ in range(self.params.num_nodes)]
        num_cpus = self.params.num_nodes
        for cpu in range(num_cpus):
            accesses = per_node[cpu]
            # (1) Boundary exchange: read the neighbouring partitions'
            # adjacent rows in a tight burst.
            neighbors = []
            if cpu > 0:
                neighbors.append(self._last_row_of(cpu - 1))
            if cpu < num_cpus - 1:
                neighbors.append(self._first_row_of(cpu + 1))
            for row in neighbors:
                for block in self._row_blocks(grid, row):
                    accesses.append(self.read(cpu, block, work=self.BOUNDARY_WORK))
            # (2) Interior sweep: sample local rows (reads + writes, local only).
            for row in range(self._first_row_of(cpu), self._last_row_of(cpu) + 1):
                if not rng.bernoulli(self.INTERIOR_SAMPLING):
                    continue
                for block in self._row_blocks(grid, row):
                    accesses.append(self.read(cpu, block, work=self.INTERIOR_WORK))
                    accesses.append(self.write(cpu, block, work=self.INTERIOR_WORK))
            # (3) Rewrite the partition's own boundary rows for the next step.
            for row in (self._first_row_of(cpu), self._last_row_of(cpu)):
                for block in self._row_blocks(grid, row):
                    accesses.append(self.write(cpu, block, work=self.BOUNDARY_WORK))
        return per_node

    def generate(self) -> AccessTrace:
        trace = self._new_trace()
        rng = self.rng.fork(4)
        grid_index = 0
        while len(trace) < self.params.target_accesses:
            grid = self._grids[grid_index % self.NUM_GRIDS]
            self.interleave_round(self._relaxation_step(grid, rng), trace)
            grid_index += 1
        return trace
