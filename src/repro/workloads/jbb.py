"""jbb: a SPECjbb-like middleware tier (repository extension, not in the paper).

SPECjbb models the business logic of a three-tier system: warehouses of
order/customer/item objects manipulated by worker threads, with the database
replaced by in-memory object trees.  As a shared-memory workload it sits
between the web servers and the databases: coherent read misses come from

* **order-object templates** — short per-order block sequences (order header,
  customer row, a couple of order lines) that migrate between worker
  threads; the short-stream mass of Figure 13's commercial band;
* **object-graph walks** — pointer chases through the warehouse's B-tree-like
  object graph (:class:`PointerChase`): dependent reads along a fixed
  successor order, realizing mid-length streams and MLP ~ 1;
* **allocator/GC metadata churn** — uncorrelated reads of recently-written
  free-list and card-table blocks (:class:`ZipfChurnPool`);

plus coherence-quiet busy work (class/code metadata reads, thread-local
allocation buffers) and per-warehouse locks.

Calibrated like the paper's commercial workloads: short-stream share of TSE
coverage in the 30-45 % band, trace coverage in the 40-60 % range (see
EXPERIMENTS.md).  Registered through the standard ``register_workload`` path
so every fig06-fig14 experiment picks it up via ``ALL_WORKLOADS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.chunk import PackedAccess
from repro.workloads.base import register_workload
from repro.workloads.engine import RequestWorkload
from repro.workloads.primitives import (
    LockSite,
    PointerChase,
    PrivateScratch,
    ReadOnlyRegion,
    TemplatePool,
    ZipfChurnPool,
)


@dataclass(frozen=True)
class JBBProfile:
    """Tuning knobs for the middleware tier."""

    warehouses: int = 24
    #: Short migratory order-object templates.
    order_templates: int = 768
    order_min: int = 3
    order_max: int = 7
    order_write_fraction: float = 0.85
    order_zipf_alpha: float = 0.5
    #: Object-graph pointer chases (mid-length dependent streams).
    graph_blocks: int = 1024
    walk_min: int = 12
    walk_max: int = 24
    walk_segment: int = 18
    walk_fraction: float = 0.55
    walk_write_fraction: float = 0.55
    #: Allocator / GC metadata churn (uncorrelated).
    gc_region_blocks: int = 2048
    gc_pool_depth: int = 384
    gc_reads_min: int = 4
    gc_reads_max: int = 10
    gc_writes: int = 2
    #: Busy work.
    class_metadata_blocks: int = 8192
    class_reads: int = 6
    private_accesses: int = 10
    lock_contention: float = 0.06


JBB_PROFILE = JBBProfile()


@register_workload("jbb")
class JBBWorkload(RequestWorkload):
    """SPECjbb-like middleware transaction generator."""

    category = "commercial"
    profile: JBBProfile = JBB_PROFILE

    def build(self) -> None:
        profile = self.profile
        self._orders = TemplatePool(
            "orders",
            self.space,
            self.rng.fork(30),
            count=profile.order_templates,
            length_min=profile.order_min,
            length_max=profile.order_max,
            write_fraction=profile.order_write_fraction,
            zipf_alpha=profile.order_zipf_alpha,
            read_work=1700,
            write_work=700,
            pc_base=31,
        )
        self._graph = PointerChase(
            "object_graph",
            self.space,
            self.rng.fork(31),
            blocks=profile.graph_blocks,
            hops_min=profile.walk_min,
            hops_max=profile.walk_max,
            segment=profile.walk_segment,
            root_zipf_alpha=0.5,
            write_fraction=profile.walk_write_fraction,
            read_work=1600,
            write_work=700,
            pc_base=33,
        )
        self._gc = ZipfChurnPool(
            "gc_metadata",
            self.space,
            self.rng.fork(32),
            region_blocks=profile.gc_region_blocks,
            pool_depth=profile.gc_pool_depth,
            reads_min=profile.gc_reads_min,
            reads_max=profile.gc_reads_max,
            writes=profile.gc_writes,
            read_work=2100,
            write_work=700,
            pc_base=35,
        )
        self._classes = ReadOnlyRegion(
            "class_metadata",
            self.space,
            self.rng.fork(33),
            blocks=profile.class_metadata_blocks,
            zipf_alpha=0.9,
            read_work=1100,
            pc_base=37,
        )
        self._locks = LockSite(
            "warehouse_locks",
            self.space,
            self.rng.fork(34),
            count=profile.warehouses,
            contention=profile.lock_contention,
            pc_base=29,
        )
        self._scratch = PrivateScratch(
            "tlab",
            self.space,
            self.rng.fork(35),
            num_nodes=self.params.num_nodes,
            blocks_per_node=384,
            accesses=profile.private_accesses,
            work=950,
            pc_base=39,
        )

    def request(self, node: int, rng) -> List[PackedAccess]:
        profile = self.profile
        out: List[PackedAccess] = []
        warehouse = rng.zipf(profile.warehouses, alpha=0.4)
        self._classes.lookup(self, node, rng, out, levels=profile.class_reads)
        self._locks.acquire(self, node, rng, out, index=warehouse)
        self._orders.walk(self, node, rng, out)
        if rng.bernoulli(profile.walk_fraction):
            self._graph.walk(self, node, rng, out)
        self._gc.churn(self, node, rng, out)
        self._scratch.work_on(self, node, rng, out)
        self._locks.release(self, node, out, index=warehouse)
        return out
