"""Composable access-pattern primitives for Workload Engine v2.

Every workload in this repository is a *mixture* of a small number of
recurring sharing idioms.  This module implements each idiom once, as a
primitive with an explicit temporal-correlation contract, so that workload
modules only pick primitives and calibrate their mix:

===========================  =================================================
Primitive                    Temporal structure it produces
===========================  =================================================
:class:`TemplatePool`        Migratory *shared templates*: fixed per-object
                             block sequences re-walked by whichever node
                             touches the object next.  Correlated
                             consumptions; realized TSE streams of roughly
                             ``template length - 1`` hits — the knob that
                             sets Figure 13's short-stream share.
:class:`PointerChase`        Dependent-read chains over a pointer-linked ring;
                             a walk of ``k`` hops behaves like a k-block
                             template whose addresses defeat stride
                             prefetchers and whose reads serialise (MLP ~ 1).
:class:`StridedSweep`        Long sequential scans of an append-mostly region
                             (delivery transactions, log scans).  Produces the
                             mid/long tail of the commercial Figure 13 CDF.
:class:`ZipfChurnPool`       Reads of *recently written* blocks in arbitrary
                             order (buffer-pool headers, LRU lists, latch
                             words).  Consumptions with no repeatable order:
                             the uncorrelated tail of Figure 6, covered by no
                             prefetcher.
:class:`PartitionedSweep`    Producer -> consumer migratory phases: each node
                             re-reads a fixed, exclusive slice of remote
                             blocks every iteration while owners rewrite their
                             partitions between reads.  Every block has
                             exactly ONE remote consumer, so the directory's
                             two CMOB pointers always name the same node's
                             consecutive iterations and compared streams
                             agree — the structural requirement for the
                             hundred-to-thousand-block streams of the
                             scientific Figure 13 curves.
:class:`ReadOnlyRegion`      Shared read-only data (file caches, B-tree
                             internals): busy work between misses, zero
                             consumptions after warm-up.
:class:`PrivateScratch`      Per-node private working storage: busy work,
                             never shared.
:class:`LockSite`            Lock acquire/release with occasional spin reads;
                             excluded from consumptions by the spin filter.
===========================  =================================================

Primitives allocate their block regions from the workload's
:class:`~repro.workloads.base.AddressSpace` at construction time and emit
accesses through the workload (the *emitter*), which owns the per-node
logical clocks.  All randomness flows through explicitly forked
:class:`~repro.common.rng.DeterministicRNG` instances, preserving the
"identical params + seed => identical trace" contract.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.chunk import PackedAccess
from repro.common.rng import DeterministicRNG
from repro.workloads.base import AddressSpace


class TemplatePool:
    """A pool of migratory block-sequence templates (connection slots,
    district rows, session objects...).

    Each template is a fixed sequence of blocks scattered across the heap
    (allocated at different times), so templates carry no stride structure.
    A node *walking* a template reads every block (optionally as a dependent
    pointer-chase) and writes most of them back, which keeps the template
    migratory: the next walker, on any node, incurs coherent read misses in
    the *same order* — the correlated consumptions TSE streams.

    Figure 13 contract: a template of length ``L`` realizes a TSE stream of
    about ``L - 1`` hits (the head block is the miss that locates the
    stream), so the pool's length distribution directly shapes the
    stream-length CDF.
    """

    def __init__(
        self,
        name: str,
        space: AddressSpace,
        rng: DeterministicRNG,
        count: int,
        length_min: int,
        length_max: int,
        write_fraction: float = 0.85,
        noise: float = 0.0,
        zipf_alpha: float = 0.5,
        read_work: int = 1500,
        write_work: int = 700,
        dependent: bool = True,
        pc_base: int = 100,
    ) -> None:
        self.name = name
        self.write_fraction = write_fraction
        self.noise = noise
        self.zipf_alpha = zipf_alpha
        self.read_work = read_work
        self.write_work = write_work
        self.dependent = dependent
        self.pc_base = pc_base
        lengths = [rng.randint(length_min, length_max) for _ in range(count)]
        region = space.allocate(name, sum(lengths))
        shuffled = list(region)
        rng.shuffle(shuffled)
        self.templates: List[List[int]] = []
        cursor = 0
        for length in lengths:
            self.templates.append(shuffled[cursor : cursor + length])
            cursor += length

    def pick(self, rng: DeterministicRNG) -> int:
        """Zipf-skewed template selection (hot objects are re-walked sooner)."""
        return rng.zipf(len(self.templates), alpha=self.zipf_alpha)

    def walk(
        self,
        emitter,
        node: int,
        rng: DeterministicRNG,
        out: List[PackedAccess],
        index: Optional[int] = None,
    ) -> None:
        """Walk one template: read (and mostly write back) each block in order."""
        if index is None:
            index = self.pick(rng)
        read = emitter.dependent_read if self.dependent else emitter.read
        pc = self.pc_base
        for block in self.templates[index]:
            if self.noise and rng.bernoulli(self.noise):
                continue
            out.append(read(node, block, pc=pc, work=self.read_work))
            if rng.bernoulli(self.write_fraction):
                out.append(emitter.write(node, block, pc=pc + 1, work=self.write_work))


class PointerChase:
    """A pointer-linked ring walked in dependent-read hops.

    The ring's successor order is a fixed random permutation of the region,
    so consecutive hop addresses carry no stride structure, and every hop's
    address comes from the previous hop's data (``dependent=True`` reads,
    which the timing model serialises).  Walks write a fraction of visited
    nodes to keep the structure migratory.

    Walks always enter at one of the ring's fixed *roots* (spaced
    ``segment`` hops apart): real object graphs are traversed from a bounded
    set of entry objects, not from arbitrary interior nodes.  Because the
    successor order is fixed, two walks from the same root consume in the
    same order (correlated), so realized TSE streams match the hop count; a
    walk that overruns its segment continues into the next root's segment,
    extending the stream.
    """

    def __init__(
        self,
        name: str,
        space: AddressSpace,
        rng: DeterministicRNG,
        blocks: int,
        hops_min: int,
        hops_max: int,
        segment: int = 16,
        root_zipf_alpha: float = 0.4,
        write_fraction: float = 0.7,
        read_work: int = 1600,
        write_work: int = 700,
        pc_base: int = 120,
    ) -> None:
        self.name = name
        self.hops_min = hops_min
        self.hops_max = hops_max
        self.segment = segment
        self.root_zipf_alpha = root_zipf_alpha
        self.write_fraction = write_fraction
        self.read_work = read_work
        self.write_work = write_work
        self.pc_base = pc_base
        region = space.allocate(name, blocks)
        ring = list(region)
        rng.shuffle(ring)
        self._ring = ring
        self._num_roots = max(1, blocks // segment)

    def walk(
        self,
        emitter,
        node: int,
        rng: DeterministicRNG,
        out: List[PackedAccess],
        hops: Optional[int] = None,
    ) -> None:
        """Enter the ring at a root and chase ``hops`` successors."""
        if hops is None:
            hops = rng.randint(self.hops_min, self.hops_max)
        root = rng.zipf(self._num_roots, alpha=self.root_zipf_alpha)
        ring = self._ring
        position = root * self.segment
        pc = self.pc_base
        for _ in range(hops):
            block = ring[position % len(ring)]
            out.append(emitter.dependent_read(node, block, pc=pc, work=self.read_work))
            if rng.bernoulli(self.write_fraction):
                out.append(emitter.write(node, block, pc=pc + 1, work=self.write_work))
            position += 1


class StridedSweep:
    """Sequential scans over a shared append-mostly region (order lines,
    logs).  Scans read a contiguous run of blocks and write half of them
    back, so a later scan of the same run by another node consumes in scan
    order — long correlated streams (the commercial CDF's upper tail).

    ``permute`` replaces the unit stride with a fixed coprime-stride
    permutation of the run, which preserves the repeatable *order* (TSE is
    indifferent) while denying stride prefetchers the pattern; leave it off
    for structures that genuinely are unit-stride (Figure 12's stride
    prefetcher earns its few percent there).
    """

    def __init__(
        self,
        name: str,
        space: AddressSpace,
        rng: DeterministicRNG,
        blocks: int,
        scan_blocks: int,
        write_fraction: float = 0.5,
        read_work: int = 450,
        write_work: int = 450,
        permute: bool = False,
        pc_base: int = 140,
    ) -> None:
        self.name = name
        self.scan_blocks = scan_blocks
        self.write_fraction = write_fraction
        self.read_work = read_work
        self.write_work = write_work
        self.pc_base = pc_base
        self.region = space.allocate(name, blocks)
        self._stride = _coprime_stride(scan_blocks) if permute else 1

    def scan(
        self,
        emitter,
        node: int,
        rng: DeterministicRNG,
        out: List[PackedAccess],
    ) -> None:
        """Scan one aligned run of ``scan_blocks`` blocks."""
        runs = len(self.region) // self.scan_blocks
        base = self.region.start + rng.randrange(runs) * self.scan_blocks
        pc = self.pc_base
        stride = self._stride
        count = self.scan_blocks
        for i in range(count):
            block = base + (i * stride) % count
            out.append(emitter.read(node, block, pc=pc, work=self.read_work))
            if rng.bernoulli(self.write_fraction):
                out.append(emitter.write(node, block, pc=pc + 1, work=self.write_work))


class ZipfChurnPool:
    """Irregular shared-structure churn (uncorrelated consumptions).

    Writes update random blocks of a shared region and remember them in a
    bounded recently-written pool; reads sample that pool, so they almost
    always incur coherent read misses — but in an order unrelated to any
    earlier consumer's order.  This is the workload mass that *no* prefetcher
    covers (Figure 6's uncorrelated tail) and the denominator ballast that
    keeps commercial coverage in the paper's 40-70 % band.
    """

    def __init__(
        self,
        name: str,
        space: AddressSpace,
        rng: DeterministicRNG,
        region_blocks: int,
        pool_depth: int = 256,
        reads_min: int = 2,
        reads_max: int = 8,
        writes: int = 2,
        read_work: int = 2000,
        write_work: int = 700,
        dependent: bool = True,
        pc_base: int = 160,
    ) -> None:
        self.name = name
        self.pool_depth = pool_depth
        self.reads_min = reads_min
        self.reads_max = reads_max
        self.writes = writes
        self.read_work = read_work
        self.write_work = write_work
        self.dependent = dependent
        self.pc_base = pc_base
        self.region = space.allocate(name, region_blocks)
        self._recent: List[int] = []

    def churn(
        self,
        emitter,
        node: int,
        rng: DeterministicRNG,
        out: List[PackedAccess],
    ) -> None:
        """Emit one round of uncorrelated reads plus pool-refreshing writes."""
        read = emitter.dependent_read if self.dependent else emitter.read
        recent = self._recent
        pc = self.pc_base
        for _ in range(rng.randint(self.reads_min, self.reads_max)):
            if recent:
                block = recent[rng.randrange(len(recent))]
            else:
                block = self.region.start + rng.randrange(len(self.region))
            out.append(read(node, block, pc=pc, work=self.read_work))
        for _ in range(self.writes):
            block = self.region.start + rng.randrange(len(self.region))
            out.append(emitter.write(node, block, pc=pc + 1, work=self.write_work))
            recent.append(block)
            if len(recent) > self.pool_depth:
                recent.pop(0)


class PartitionedSweep:
    """Producer -> consumer migratory phases (the scientific-workload core).

    A region is partitioned per owner node.  At construction, every owner's
    partition is sliced among its *reader* nodes so that each block has
    exactly one remote consumer, and each consumer's read sequence is a
    fixed (optionally permuted) order over its slices.  Per iteration:

    * **read phase** — every consumer re-reads its remote sequence in the
      same order (plus interleaved local compute reads of its own blocks);
    * **write phase** — every owner rewrites its partition, turning the next
      iteration's re-reads back into coherent read misses.

    Because a block's recent-consumer list at the directory always names the
    same node's consecutive iterations, the two compared streams agree over
    the whole sequence: realized stream length ~ the consumer's per-iteration
    remote read count (hundreds of blocks), reproducing the scientific
    Figure 13 curves.  The per-consumer permutation defeats stride
    prefetchers without disturbing the repeatable order.

    ``drift(rng, fraction)`` re-permutes a fraction of each consumer's
    sequence — moldyn's neighbour-list rebuilds — which breaks stream
    agreement exactly at the drift points.
    """

    def __init__(
        self,
        name: str,
        space: AddressSpace,
        rng: DeterministicRNG,
        num_nodes: int,
        blocks_per_node: int,
        reader_offsets: Sequence[int] = (1,),
        remote_fraction: float = 1.0,
        read_work: int = 24,
        write_work: int = 10,
        local_reads_per_remote: int = 1,
        local_read_work: int = 20,
        interior_rewrite_stride: int = 1,
        permute: bool = True,
        pc_base: int = 180,
    ) -> None:
        self.name = name
        self.num_nodes = num_nodes
        self.read_work = read_work
        self.write_work = write_work
        self.local_reads_per_remote = local_reads_per_remote
        self.local_read_work = local_read_work
        self.interior_rewrite_stride = interior_rewrite_stride
        self.pc_base = pc_base
        self.region = space.allocate(name, blocks_per_node * num_nodes)
        self._shared_len = max(1, int(blocks_per_node * remote_fraction))
        self._partitions: List[List[int]] = []
        start = self.region.start
        for owner in range(num_nodes):
            partition = list(
                range(start + owner * blocks_per_node, start + (owner + 1) * blocks_per_node)
            )
            self._partitions.append(partition)
        # Slice each owner's shared sub-partition among its readers (one
        # reader per offset in ``reader_offsets``, e.g. ``(1, -1)`` for
        # ocean's two grid neighbours); every block lands in exactly one
        # consumer's sequence.  An offset that is a multiple of the node
        # count would alias the owner itself, so it falls back to the next
        # neighbour — small machines must still share (two readers may then
        # coincide, which keeps slices disjoint and blocks single-consumer).
        self._sequences: List[List[int]] = [[] for _ in range(num_nodes)]
        offsets = []
        if num_nodes > 1:
            for offset in reader_offsets:
                effective = offset % num_nodes
                offsets.append(effective if effective else 1)
        for owner in range(num_nodes):
            partition = self._partitions[owner]
            shared = partition[: self._shared_len]
            if not offsets:
                continue
            slice_size = len(shared) // len(offsets)
            for r, offset in enumerate(offsets):
                reader = (owner + offset) % num_nodes
                lo = r * slice_size
                hi = (r + 1) * slice_size if r < len(offsets) - 1 else len(shared)
                self._sequences[reader].extend(shared[lo:hi])
        # Fixed per-consumer permutation: repeatable order, no strides.
        if permute:
            for sequence in self._sequences:
                rng.shuffle(sequence)

    def sequence_length(self, node: int) -> int:
        """Number of remote blocks node ``node`` consumes per iteration."""
        return len(self._sequences[node])

    def drift(self, rng: DeterministicRNG, fraction: float) -> None:
        """Re-permute a fraction of every consumer's read order (list rebuild)."""
        for sequence in self._sequences:
            n = len(sequence)
            if n < 2:
                continue
            count = max(2, int(n * fraction))
            picks = sorted(rng.sample(range(n), min(count, n)))
            values = [sequence[i] for i in picks]
            rotated = values[1:] + values[:1]
            for i, value in zip(picks, rotated):
                sequence[i] = value

    def read_phase(self, emitter) -> List[List[PackedAccess]]:
        """Per-node read lists: each consumer re-reads its remote sequence.

        Deliberately draw-free: the repeatable order is the whole point of
        the primitive, so phases consume no randomness (only :meth:`drift`
        perturbs the sequences).
        """
        per_node: List[List[PackedAccess]] = [[] for _ in range(self.num_nodes)]
        pc = self.pc_base
        local_every = self.local_reads_per_remote
        for node in range(self.num_nodes):
            out = per_node[node]
            own = self._partitions[node]
            own_len = len(own)
            local_cursor = node  # deterministic, distinct per node
            for i, block in enumerate(self._sequences[node]):
                out.append(emitter.read(node, block, pc=pc, work=self.read_work))
                for _ in range(local_every):
                    local_cursor = (local_cursor + 7) % own_len
                    out.append(
                        emitter.read(node, own[local_cursor], pc=pc + 1, work=self.local_read_work)
                    )
        return per_node

    def write_phase(self, emitter) -> List[List[PackedAccess]]:
        """Per-node write lists: each owner rewrites its shared sub-partition
        (turning the next iteration's remote reads back into consumptions)
        plus every ``interior_rewrite_stride``-th interior block.  Draw-free,
        like :meth:`read_phase`."""
        per_node: List[List[PackedAccess]] = [[] for _ in range(self.num_nodes)]
        pc = self.pc_base + 2
        stride = max(1, self.interior_rewrite_stride)
        shared_len = self._shared_len
        for node in range(self.num_nodes):
            out = per_node[node]
            partition = self._partitions[node]
            for block in partition[:shared_len]:
                out.append(emitter.write(node, block, pc=pc, work=self.write_work))
            for block in partition[shared_len::stride]:
                out.append(emitter.write(node, block, pc=pc, work=self.write_work))
        return per_node


class ReadOnlyRegion:
    """Shared read-only data: produces busy work and (after each node's first
    touch) zero consumptions.  Models file caches and B-tree internals."""

    def __init__(
        self,
        name: str,
        space: AddressSpace,
        rng: DeterministicRNG,
        blocks: int,
        zipf_alpha: float = 0.8,
        read_work: int = 1200,
        pc_base: int = 200,
    ) -> None:
        self.name = name
        self.zipf_alpha = zipf_alpha
        self.read_work = read_work
        self.pc_base = pc_base
        self.region = space.allocate(name, blocks)

    def browse(
        self,
        emitter,
        node: int,
        rng: DeterministicRNG,
        out: List[PackedAccess],
        reads: int,
    ) -> None:
        """Read ``reads`` consecutive blocks from a zipf-skewed start point."""
        start = rng.zipf(len(self.region) - reads, alpha=self.zipf_alpha)
        base = self.region.start + start
        pc = self.pc_base
        for offset in range(reads):
            out.append(emitter.read(node, base + offset, pc=pc, work=self.read_work))

    def lookup(
        self,
        emitter,
        node: int,
        rng: DeterministicRNG,
        out: List[PackedAccess],
        levels: int = 3,
    ) -> None:
        """A B-tree-style descent: one random block per level."""
        pc = self.pc_base + 1
        for level in range(levels):
            block = self.region.start + rng.randrange(len(self.region))
            out.append(emitter.read(node, block, pc=pc + level, work=self.read_work))


class PrivateScratch:
    """Per-node private working storage (sort heaps, session state)."""

    def __init__(
        self,
        name: str,
        space: AddressSpace,
        rng: DeterministicRNG,
        num_nodes: int,
        blocks_per_node: int,
        accesses: int = 8,
        work: int = 1000,
        pc_base: int = 220,
    ) -> None:
        self.name = name
        self.accesses = accesses
        self.work = work
        self.pc_base = pc_base
        self.regions = [
            space.allocate(f"{name}{n}", blocks_per_node) for n in range(num_nodes)
        ]

    def work_on(
        self,
        emitter,
        node: int,
        rng: DeterministicRNG,
        out: List[PackedAccess],
    ) -> None:
        region = self.regions[node]
        pc = self.pc_base
        for _ in range(self.accesses):
            block = region.start + rng.randrange(len(region))
            if rng.bernoulli(0.5):
                out.append(emitter.read(node, block, pc=pc, work=self.work))
            else:
                out.append(emitter.write(node, block, pc=pc, work=self.work))


class LockSite:
    """Lock words: atomic acquire/release plus occasional contended spins.
    Spin reads are excluded from consumptions by the paper's spin filter."""

    def __init__(
        self,
        name: str,
        space: AddressSpace,
        rng: DeterministicRNG,
        count: int,
        contention: float = 0.05,
        pc_base: int = 240,
    ) -> None:
        self.name = name
        self.contention = contention
        self.pc_base = pc_base
        self.locks = list(space.allocate(name, count))

    def acquire(
        self,
        emitter,
        node: int,
        rng: DeterministicRNG,
        out: List[PackedAccess],
        index: int = 0,
    ) -> None:
        lock = self.locks[index % len(self.locks)]
        if rng.bernoulli(self.contention):
            for _ in range(rng.randint(1, 3)):
                out.append(emitter.spin_read(node, lock, pc=self.pc_base))
        out.append(emitter.atomic(node, lock, pc=self.pc_base + 1))

    def release(self, emitter, node: int, out: List[PackedAccess], index: int = 0) -> None:
        out.append(emitter.atomic(node, self.locks[index % len(self.locks)], pc=self.pc_base + 2))


def _coprime_stride(length: int, minimum: int = 5) -> int:
    """Smallest stride >= minimum coprime with ``length`` (full permutation)."""
    import math

    for candidate in range(minimum, length):
        if math.gcd(candidate, length) == 1:
            return candidate
    return 1
