"""sparse: an iterative sparse linear solver (repository extension, not in the paper).

Models a conjugate-gradient-style solver on a banded sparse matrix
distributed by rows: every iteration each CPU gathers the remote entries of
the solution vector its off-diagonal band references (the *halo*), streams
through its local matrix values, and rewrites its own vector partition after
the update.  The gather order is fixed by the matrix's sparsity structure,
so — like the paper's scientific codes — every iteration re-reads exactly
the same remote blocks in exactly the same order.

Workload Engine v2 composition: one :class:`PartitionedSweep` over the
solution vector (halo reads, one remote reader per block, two local
matrix-value reads per gather) plus a small :class:`ZipfChurnPool` for the
global reduction variables (dot products, convergence flags), which gives
sparse a thin uncorrelated tail that distinguishes it from em3d.  Realized
TSE streams run to the halo length (hundreds of blocks), placing sparse on
the scientific side of Figure 13.  Registered through the standard
``register_workload`` path so every fig06-fig14 experiment picks it up via
``ALL_WORKLOADS``.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.common.chunk import PackedAccess
from repro.workloads.base import register_workload
from repro.workloads.engine import PhasedWorkload
from repro.workloads.primitives import PartitionedSweep, ZipfChurnPool


@register_workload("sparse")
class SparseSolverWorkload(PhasedWorkload):
    """Scaled-down sparse-solver trace generator."""

    category = "scientific"

    #: Solution-vector blocks owned by each CPU at scale = 1.0.
    BASE_BLOCKS_PER_NODE = 384
    #: Fraction of each partition referenced by the neighbouring band.
    HALO_FRACTION = 0.75
    #: Matrix-value reads per gathered halo entry (local, read-only).
    VALUES_PER_GATHER = 2
    WORK_PER_GATHER = 28

    def build(self) -> None:
        self._vector = PartitionedSweep(
            "vector",
            self.space,
            self.rng.fork(40),
            num_nodes=self.params.num_nodes,
            blocks_per_node=self.params.scaled(self.BASE_BLOCKS_PER_NODE, minimum=32),
            # The band references the next row partition (block lower/upper
            # bidiagonal structure collapses to one remote reader per block).
            reader_offsets=(2,),
            remote_fraction=self.HALO_FRACTION,
            read_work=self.WORK_PER_GATHER,
            write_work=12,
            local_reads_per_remote=self.VALUES_PER_GATHER,
            local_read_work=18,
        )
        self._reduction = ZipfChurnPool(
            "reduction",
            self.space,
            self.rng.fork(41),
            region_blocks=64,
            pool_depth=32,
            reads_min=1,
            reads_max=2,
            writes=1,
            read_work=40,
            write_work=30,
            dependent=False,
            pc_base=44,
        )

    def iteration(self, index: int, rng) -> Iterator[List[List[PackedAccess]]]:
        # Gather + SpMV: every CPU reads its halo in matrix order, streaming
        # local values alongside.
        yield self._vector.read_phase(self)
        # Vector update: each CPU rewrites its own partition, then posts its
        # partial dot products to the (uncorrelated) reduction cells.
        writes = self._vector.write_phase(self)
        for node in range(self.params.num_nodes):
            self._reduction.churn(self, node, rng, writes[node])
        yield writes
