"""Workload Engine v2 combinators: mixtures of primitives with streaming emission.

A workload is either *request-driven* (commercial: transactions / HTTP
requests dispatched to rotating nodes) or *phase-driven* (scientific:
barrier-delimited iterations where every node progresses together).  The two
combinators here own the dispatch / interleaving / stopping logic so that a
concrete workload only has to

* build its primitives (:meth:`MixtureWorkload.build`), and
* express one unit of work — a request (:meth:`RequestWorkload.request`) or
  one iteration's phases (:meth:`PhasedWorkload.iteration`).

Traces are emitted as a **stream of batches** — one request, or one
interleaved phase, at a time — where a batch is a list of *packed access
records* (see :mod:`repro.common.chunk`).  The emission loop fills packed
:class:`~repro.common.chunk.TraceChunk` columns directly
(:meth:`MixtureWorkload.stream_chunks` / :meth:`generate_chunked`): no
``MemoryAccess`` objects exist on the columnar path.  The legacy object API
is preserved as a thin view: ``stream()`` yields ``MemoryAccess`` objects
wrapped around the same records and ``generate()`` materializes them into an
:class:`~repro.common.types.AccessTrace`.  Every path consumes identical RNG
draws and stops at the first batch boundary after the access target is
crossed, so chunked and object emission are bit-identical.
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Optional

from repro.common.chunk import ChunkedTrace, TraceChunk, stream_chunk_size
from repro.common.types import ACCESS_TYPE_FROM_CODE, AccessTrace, MemoryAccess
from repro.workloads.base import Workload, WorkloadParams, interleave

__all__ = [
    "MixtureWorkload",
    "PhasedWorkload",
    "RequestWorkload",
    "interleave",
]


class MixtureWorkload(Workload):
    """Base for every Workload Engine v2 workload.

    Subclasses allocate primitives in :meth:`build` and produce work in
    :meth:`batches`; this class provides the chunked / streaming /
    materializing trace APIs on top.
    """

    def __init__(self, params: Optional[WorkloadParams] = None) -> None:
        super().__init__(params)
        self.build()

    # ------------------------------------------------------------------- hooks
    @abc.abstractmethod
    def build(self) -> None:
        """Allocate primitives and any derived state (called once at init)."""

    @abc.abstractmethod
    def batches(self) -> Iterator[list]:
        """Endless stream of work units (one request / one interleaved phase),
        each a list of packed access records."""

    # ----------------------------------------------------------------- emission
    def stream_chunks(
        self,
        target_accesses: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> Iterator[TraceChunk]:
        """Emit the trace as packed fixed-size chunks (the columnar backbone).

        Batches are packed straight into column arrays; chunk boundaries are
        independent of batch boundaries (a chunk is yielded as soon as it
        reaches ``chunk_size``), and emission stops at the first batch
        boundary after the access target is crossed — the same "finish the
        transaction you are in" semantics ``stream()`` has.
        """
        target = target_accesses if target_accesses is not None else self.params.target_accesses
        size = chunk_size if chunk_size is not None else stream_chunk_size()
        emitted = 0
        chunk = TraceChunk()
        for batch in self.batches():
            chunk.extend_packed(batch)
            emitted += len(batch)
            while len(chunk) >= size:
                yield chunk.slice(0, size)
                chunk = chunk.slice(size)
            if emitted >= target:
                break
        if len(chunk):
            yield chunk

    def generate_chunked(
        self,
        target_accesses: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> ChunkedTrace:
        """Materialize the chunk stream into a :class:`ChunkedTrace`."""
        trace = ChunkedTrace(num_nodes=self.params.num_nodes, name=self.name)
        for chunk in self.stream_chunks(target_accesses, chunk_size):
            trace.append_chunk(chunk)
        return trace

    # -------------------------------------------------------------- object view
    def stream(self, target_accesses: Optional[int] = None) -> Iterator[MemoryAccess]:
        """Yield accesses as ``MemoryAccess`` objects (thin view over emission).

        The generator holds at most one batch in memory, so arbitrarily long
        traces can be replayed through the TSE simulator without
        materializing an :class:`AccessTrace`.
        """
        target = target_accesses if target_accesses is not None else self.params.target_accesses
        decode = ACCESS_TYPE_FROM_CODE
        emitted = 0
        for batch in self.batches():
            for node, block, type_code, pc, timestamp, dep in batch:
                yield MemoryAccess(
                    node=node, address=block, access_type=decode[type_code],
                    pc=pc, timestamp=timestamp, dependent=bool(dep),
                )
            emitted += len(batch)
            if emitted >= target:
                return

    def generate(self) -> AccessTrace:
        """Materialize the stream into an interleaved :class:`AccessTrace`."""
        trace = self._new_trace()
        trace.extend(self.stream())
        return trace


class RequestWorkload(MixtureWorkload):
    """Request-driven (commercial) combinator.

    Requests are dispatched round-robin with jitter, so consecutive requests
    touching a hot object land on different nodes (migratory sharing), and
    each request's accesses stay contiguous per node — the structure that
    keeps commercial consumption MLP near 1 in the timing model.
    """

    category = "commercial"

    #: Dispatcher skips ahead 1..DISPATCH_JITTER nodes between requests.
    DISPATCH_JITTER = 3
    #: RNG fork salt for the dispatch/request stream.
    RNG_SALT = 21

    @abc.abstractmethod
    def request(self, node: int, rng) -> list:
        """Emit one complete request / transaction executed by ``node``."""

    def batches(self) -> Iterator[list]:
        rng = self.rng.fork(self.RNG_SALT)
        num_nodes = self.params.num_nodes
        node = 0
        while True:
            node = (node + 1 + rng.randrange(self.DISPATCH_JITTER)) % num_nodes
            yield self.request(node, rng)


class PhasedWorkload(MixtureWorkload):
    """Phase-driven (scientific) combinator.

    Each iteration contributes one or more barrier-delimited phases; every
    phase is a set of per-node access lists interleaved ``quantum`` accesses
    at a time.
    """

    category = "scientific"

    #: RNG fork salt for the iteration stream.
    RNG_SALT = 23

    @abc.abstractmethod
    def iteration(self, index: int, rng) -> Iterator[List[list]]:
        """Yield this iteration's phases (per-node access lists, in order)."""

    def batches(self) -> Iterator[list]:
        rng = self.rng.fork(self.RNG_SALT)
        quantum = self.params.quantum
        index = 0
        while True:
            for per_node in self.iteration(index, rng):
                yield list(interleave(per_node, quantum))
            index += 1
