"""Web-server workloads: SPECweb99-like request serving on Apache- and Zeus-like servers.

Web servers share less migratory data than databases: the bulk of their
memory traffic is the (read-only, hence coherence-quiet) static file cache,
while coherent read misses come from connection/request bookkeeping that
migrates between the worker threads on different nodes, shared statistics,
and the dynamic-content (fastCGI) plumbing.  Roughly 40–45 % of consumptions
follow a recent sharer's order (Figure 6 / Table 3: 43 % for both Apache and
Zeus), and 30–45 % of TSE's coverage comes from streams shorter than eight
blocks (Figure 13) because the per-request shared state is small.

Each simulated request is composed of:

* a connection/request *template* — the per-connection-slot sequence of
  shared blocks (accept queue entry, connection state, request buffer,
  session entry) that the handling node reads and updates (correlated,
  short);
* file-cache metadata churn — LRU list and hash-bucket updates on random
  buckets (uncorrelated);
* static-file reads from the (read-only) file cache plus private scratch
  work (busy accesses, no consumptions);
* occasionally a dynamic-content request that walks a longer fastCGI
  template (the mid-length streams of Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.types import AccessTrace, AccessType, MemoryAccess
from repro.workloads.base import Workload, WorkloadParams, register_workload


@dataclass(frozen=True)
class WebProfile:
    """Tuning knobs that differentiate the web servers."""

    #: Number of connection slots (each has a small template of shared blocks).
    connection_slots: int = 2048
    template_min: int = 4
    template_max: int = 10
    template_write_fraction: float = 0.8
    template_noise: float = 0.05
    #: Uncorrelated metadata reads / writes per request.
    metadata_reads_min: int = 2
    metadata_reads_max: int = 7
    metadata_writes: int = 2
    metadata_region_blocks: int = 8192
    #: Depth of the recently-written pool that uncorrelated reads sample from.
    metadata_pool_depth: int = 256
    #: Read-only static file cache blocks touched per request (busy work).
    file_reads: int = 10
    file_cache_blocks: int = 32768
    private_accesses: int = 8
    #: Fraction of requests that are dynamic (longer shared template).
    dynamic_fraction: float = 0.25
    dynamic_template_blocks: int = 24
    #: Zipf skew of connection-slot reuse.
    slot_zipf_alpha: float = 0.4
    lock_contention: float = 0.05


# Presets calibrated so trace coverage at the paper's TSE configuration lands
# near Table 3's 43 % for both servers (see EXPERIMENTS.md).
APACHE_PROFILE = WebProfile(
    template_min=4,
    template_max=10,
    metadata_reads_min=6,
    metadata_reads_max=12,
    metadata_region_blocks=1024,
    metadata_pool_depth=512,
    dynamic_fraction=0.25,
)

ZEUS_PROFILE = WebProfile(
    # Zeus's event-driven core touches slightly less per-request shared state
    # and slightly less irregular metadata per request.
    template_min=3,
    template_max=8,
    metadata_reads_min=4,
    metadata_reads_max=9,
    metadata_region_blocks=1024,
    metadata_pool_depth=512,
    dynamic_fraction=0.20,
)


class WebServerWorkload(Workload):
    """Generic SPECweb-like generator parameterised by a :class:`WebProfile`."""

    category = "commercial"
    profile: WebProfile = WebProfile()

    def __init__(self, params: Optional[WorkloadParams] = None) -> None:
        super().__init__(params)
        self._build_server()

    # --------------------------------------------------------------- building
    def _build_server(self) -> None:
        profile = self.profile
        rng = self.rng.fork(20)
        self._slot_templates: List[List[int]] = []
        lengths = [
            rng.randint(profile.template_min, profile.template_max)
            for _ in range(profile.connection_slots)
        ]
        # Connection-slot state is scattered across the heap (allocated at
        # different times), so slot templates draw from a shuffled pool —
        # stride prefetchers get no traction on them (Figure 12).
        slots = self.space.allocate("connections", sum(lengths))
        shuffled_blocks = list(slots)
        rng.shuffle(shuffled_blocks)
        cursor = 0
        for length in lengths:
            self._slot_templates.append(shuffled_blocks[cursor : cursor + length])
            cursor += length

        self._metadata_region = self.space.allocate("metadata", profile.metadata_region_blocks)
        self._file_cache = self.space.allocate("file_cache", profile.file_cache_blocks)
        self._dynamic_templates = []
        dynamic = self.space.allocate(
            "dynamic", profile.dynamic_template_blocks * 64
        )
        dynamic_blocks = list(dynamic)
        rng.shuffle(dynamic_blocks)
        for i in range(64):
            start = i * profile.dynamic_template_blocks
            self._dynamic_templates.append(
                dynamic_blocks[start : start + profile.dynamic_template_blocks]
            )
        self._accept_lock = self.space.allocate("accept_lock", 1).start
        self._private_regions = [
            self.space.allocate(f"private{n}", 256) for n in range(self.params.num_nodes)
        ]
        #: Recently written metadata blocks; uncorrelated reads sample from here.
        self._recent_metadata_writes: List[int] = []

    # ----------------------------------------------------------- access pieces
    def _bump(self, node: int, work: int) -> int:
        self._node_time[node] += work
        return self._node_time[node]

    def _dependent_read(self, node: int, block: int, pc: int, work: int) -> MemoryAccess:
        return MemoryAccess(
            node=node,
            address=block,
            access_type=AccessType.READ,
            pc=pc,
            timestamp=self._bump(node, work),
            dependent=True,
        )

    def _accept_connection(self, node: int, rng, out: List[MemoryAccess]) -> None:
        if rng.bernoulli(self.profile.lock_contention):
            for _ in range(rng.randint(1, 3)):
                out.append(self.spin_read(node, self._accept_lock))
        out.append(self.atomic(node, self._accept_lock, pc=20))

    def _slot_work(self, node: int, slot: int, rng, out: List[MemoryAccess]) -> None:
        """The migratory per-connection template (correlated consumptions)."""
        profile = self.profile
        for block in self._slot_templates[slot]:
            if rng.bernoulli(profile.template_noise):
                continue
            out.append(self._dependent_read(node, block, pc=21, work=2000))
            if rng.bernoulli(profile.template_write_fraction):
                out.append(self.write(node, block, pc=22, work=800))

    def _metadata_churn(self, node: int, rng, out: List[MemoryAccess]) -> None:
        """File-cache LRU / hash-bucket churn (uncorrelated consumptions).

        Reads sample from recently written metadata blocks so they are
        coherent read misses, but in an order unrelated to any earlier
        consumer's order.
        """
        profile = self.profile
        reads = rng.randint(profile.metadata_reads_min, profile.metadata_reads_max)
        for _ in range(reads):
            if self._recent_metadata_writes:
                block = self._recent_metadata_writes[
                    rng.randrange(len(self._recent_metadata_writes))
                ]
            else:
                block = self._metadata_region.start + rng.randrange(len(self._metadata_region))
            out.append(self._dependent_read(node, block, pc=23, work=2400))
        for _ in range(profile.metadata_writes):
            block = self._metadata_region.start + rng.randrange(len(self._metadata_region))
            out.append(self.write(node, block, pc=24, work=800))
            self._recent_metadata_writes.append(block)
            if len(self._recent_metadata_writes) > profile.metadata_pool_depth:
                self._recent_metadata_writes.pop(0)

    def _serve_file(self, node: int, rng, out: List[MemoryAccess]) -> None:
        """Read-only static content plus private scratch buffers (busy work)."""
        start = rng.zipf(len(self._file_cache) - self.profile.file_reads, alpha=0.8)
        base = self._file_cache.start + start
        for offset in range(self.profile.file_reads):
            out.append(self.read(node, base + offset, pc=25, work=1200))
        region = self._private_regions[node]
        for _ in range(self.profile.private_accesses):
            block = region.start + rng.randrange(len(region))
            if rng.bernoulli(0.5):
                out.append(self.read(node, block, pc=26, work=1000))
            else:
                out.append(self.write(node, block, pc=26, work=1000))

    def _dynamic_request(self, node: int, rng, out: List[MemoryAccess]) -> None:
        """fastCGI-style dynamic content: a longer migratory template."""
        template = self._dynamic_templates[rng.randrange(len(self._dynamic_templates))]
        for block in template:
            out.append(self._dependent_read(node, block, pc=27, work=1600))
            if rng.bernoulli(0.6):
                out.append(self.write(node, block, pc=28, work=800))

    # -------------------------------------------------------------- generation
    def _request(self, node: int, rng) -> List[MemoryAccess]:
        out: List[MemoryAccess] = []
        slot = rng.zipf(len(self._slot_templates), alpha=self.profile.slot_zipf_alpha)
        self._accept_connection(node, rng, out)
        self._slot_work(node, slot, rng, out)
        self._metadata_churn(node, rng, out)
        self._serve_file(node, rng, out)
        if rng.bernoulli(self.profile.dynamic_fraction):
            self._dynamic_request(node, rng, out)
        return out

    def generate(self) -> AccessTrace:
        trace = self._new_trace()
        rng = self.rng.fork(21)
        num_cpus = self.params.num_nodes
        node = 0
        while len(trace) < self.params.target_accesses:
            node = (node + 1 + rng.randrange(3)) % num_cpus
            trace.extend(self._request(node, rng))
        return trace


@register_workload("apache")
class ApacheWorkload(WebServerWorkload):
    """SPECweb99 on an Apache-like (worker-threaded) server."""

    profile = APACHE_PROFILE


@register_workload("zeus")
class ZeusWorkload(WebServerWorkload):
    """SPECweb99 on a Zeus-like (event-driven) server."""

    profile = ZEUS_PROFILE
