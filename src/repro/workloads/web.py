"""Web-server workloads: SPECweb99-like request serving on Apache- and Zeus-like servers.

Web servers share less migratory data than databases: the bulk of their
memory traffic is the (read-only, hence coherence-quiet) static file cache,
while coherent read misses come from connection/request bookkeeping that
migrates between the worker threads on different nodes, shared statistics,
and the dynamic-content (fastCGI) plumbing.  Roughly 40-45 % of consumptions
follow a recent sharer's order (Figure 6 / Table 3: 43 % for both Apache and
Zeus), and 30-45 % of TSE's coverage comes from streams shorter than eight
blocks (Figure 13) because the per-request shared state is small.

Workload Engine v2 composition (see EXPERIMENTS.md for the calibration
targets and measured values):

* ``connections`` — a :class:`TemplatePool` of *short* per-connection-slot
  templates (accept-queue entry, connection state, request buffer, session
  entry).  A template of length L realizes a TSE stream of ~L-1 hits, so
  this pool supplies the short-stream mass of Figure 13.
* ``dynamic`` — a :class:`TemplatePool` of longer fastCGI templates (the
  mid-length streams of the commercial CDF).
* ``metadata`` — a :class:`ZipfChurnPool`: LRU-list and hash-bucket updates
  in no repeatable order (uncorrelated consumptions).
* ``files`` — a :class:`ReadOnlyRegion` static file cache plus
  :class:`PrivateScratch` buffers (busy accesses, no consumptions).
* ``accept`` — a :class:`LockSite` for the accept queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.chunk import PackedAccess
from repro.workloads.base import register_workload
from repro.workloads.engine import RequestWorkload
from repro.workloads.primitives import (
    LockSite,
    PrivateScratch,
    ReadOnlyRegion,
    TemplatePool,
    ZipfChurnPool,
)


@dataclass(frozen=True)
class WebProfile:
    """Tuning knobs that differentiate the web servers."""

    #: Number of connection slots (each has a short template of shared
    #: blocks).  Small enough that slots are re-accepted many times within a
    #: trace — a slot's first walk has no CMOB history to stream from.
    connection_slots: int = 256
    template_min: int = 3
    template_max: int = 7
    template_write_fraction: float = 0.85
    #: Zipf skew of connection-slot reuse.
    slot_zipf_alpha: float = 0.4
    #: Fraction of requests that are dynamic (longer shared template).
    dynamic_fraction: float = 0.30
    dynamic_templates: int = 64
    dynamic_min: int = 14
    dynamic_max: int = 26
    #: Uncorrelated metadata churn per request.
    metadata_reads_min: int = 3
    metadata_reads_max: int = 9
    metadata_writes: int = 2
    metadata_region_blocks: int = 1024
    metadata_pool_depth: int = 512
    #: Read-only static file cache blocks touched per request (busy work).
    file_reads: int = 10
    file_cache_blocks: int = 32768
    private_accesses: int = 8
    lock_contention: float = 0.05


# Presets calibrated so the short-stream share of TSE coverage lands in the
# paper's 30-45 % band and trace coverage near Table 3's 43 % (see
# EXPERIMENTS.md for the measured values).
APACHE_PROFILE = WebProfile(
    template_min=3,
    template_max=7,
    metadata_reads_min=4,
    metadata_reads_max=10,
    dynamic_fraction=0.40,
)

ZEUS_PROFILE = WebProfile(
    # Zeus's event-driven core touches slightly less per-request shared state
    # and slightly less irregular metadata per request.
    template_min=3,
    template_max=6,
    metadata_reads_min=3,
    metadata_reads_max=8,
    dynamic_fraction=0.36,
)


class WebServerWorkload(RequestWorkload):
    """Generic SPECweb-like generator parameterised by a :class:`WebProfile`."""

    category = "commercial"
    profile: WebProfile = WebProfile()

    def build(self) -> None:
        profile = self.profile
        self._connections = TemplatePool(
            "connections",
            self.space,
            self.rng.fork(20),
            count=profile.connection_slots,
            length_min=profile.template_min,
            length_max=profile.template_max,
            write_fraction=profile.template_write_fraction,
            zipf_alpha=profile.slot_zipf_alpha,
            read_work=2000,
            write_work=800,
            pc_base=21,
        )
        self._dynamic = TemplatePool(
            "dynamic",
            self.space,
            self.rng.fork(24),
            count=profile.dynamic_templates,
            length_min=profile.dynamic_min,
            length_max=profile.dynamic_max,
            write_fraction=0.6,
            zipf_alpha=0.3,
            read_work=1600,
            write_work=800,
            pc_base=27,
        )
        self._metadata = ZipfChurnPool(
            "metadata",
            self.space,
            self.rng.fork(22),
            region_blocks=profile.metadata_region_blocks,
            pool_depth=profile.metadata_pool_depth,
            reads_min=profile.metadata_reads_min,
            reads_max=profile.metadata_reads_max,
            writes=profile.metadata_writes,
            read_work=2400,
            write_work=800,
            pc_base=23,
        )
        self._files = ReadOnlyRegion(
            "file_cache",
            self.space,
            self.rng.fork(23),
            blocks=profile.file_cache_blocks,
            zipf_alpha=0.8,
            read_work=1200,
            pc_base=25,
        )
        self._accept = LockSite(
            "accept_lock",
            self.space,
            self.rng.fork(25),
            count=1,
            contention=profile.lock_contention,
            pc_base=19,
        )
        self._scratch = PrivateScratch(
            "private",
            self.space,
            self.rng.fork(26),
            num_nodes=self.params.num_nodes,
            blocks_per_node=256,
            accesses=profile.private_accesses,
            work=1000,
            pc_base=26,
        )

    def request(self, node: int, rng) -> List[PackedAccess]:
        profile = self.profile
        out: List[PackedAccess] = []
        self._accept.acquire(self, node, rng, out)
        self._connections.walk(self, node, rng, out)
        self._metadata.churn(self, node, rng, out)
        self._files.browse(self, node, rng, out, reads=profile.file_reads)
        self._scratch.work_on(self, node, rng, out)
        if rng.bernoulli(profile.dynamic_fraction):
            self._dynamic.walk(self, node, rng, out)
        return out


@register_workload("apache")
class ApacheWorkload(WebServerWorkload):
    """SPECweb99 on an Apache-like (worker-threaded) server."""

    profile = APACHE_PROFILE


@register_workload("zeus")
class ZeusWorkload(WebServerWorkload):
    """SPECweb99 on a Zeus-like (event-driven) server."""

    profile = ZEUS_PROFILE
