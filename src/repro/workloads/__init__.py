"""Workload generators (Workload Engine v2).

The paper evaluates three scientific applications (em3d, moldyn, ocean) and
four commercial server workloads (TPC-C on DB2 and Oracle, SPECweb99 on
Apache and Zeus); this repository adds a SPECjbb-like middleware tier (jbb)
and a sparse iterative solver (sparse).  The real software stacks cannot be
run here, so each workload is replaced by a generator that executes the same
*sharing structure* — the data-structure traversals that produce coherent
read misses — and emits a globally interleaved multi-node access trace.

Every workload is a **mixture of composable primitives**
(:mod:`repro.workloads.primitives`: shared templates, pointer-chase chains,
strided sweeps, zipf-reuse churn pools, producer->consumer partitioned
sweeps) assembled by a request- or phase-combinator
(:mod:`repro.workloads.engine`) that also provides generator-based streaming
emission: ``workload.stream()`` yields accesses one batch at a time, so
traces need not be materialized in memory, while ``workload.generate()``
returns the familiar :class:`~repro.common.types.AccessTrace`.

The generators are calibrated (see ``tests/test_stream_lengths.py`` and
EXPERIMENTS.md) so the temporal-correlation and stream-length behaviour of
the traces matches the paper's characterisation:

* scientific workloads repeat essentially identical consumption sequences
  every iteration (near-100 % correlation, streams of hundreds to thousands
  of blocks — Figure 13's right-shifted CDFs);
* commercial workloads mix migratory templates (correlated) with irregular
  shared-structure churn (uncorrelated), giving ~40-65 % correlated
  consumptions and 30-45 % of TSE coverage from streams shorter than eight
  blocks.
"""

from repro.workloads.base import (
    ALL_WORKLOADS,
    COMMERCIAL_WORKLOADS,
    SCIENTIFIC_WORKLOADS,
    Workload,
    WorkloadParams,
    available_workloads,
    get_workload,
)
from repro.workloads.em3d import Em3dWorkload
from repro.workloads.engine import MixtureWorkload, PhasedWorkload, RequestWorkload
from repro.workloads.jbb import JBBWorkload
from repro.workloads.moldyn import MoldynWorkload
from repro.workloads.ocean import OceanWorkload
from repro.workloads.oltp import DB2Workload, OLTPWorkload, OracleWorkload
from repro.workloads.sparse import SparseSolverWorkload
from repro.workloads.web import ApacheWorkload, WebServerWorkload, ZeusWorkload

__all__ = [
    "Workload",
    "WorkloadParams",
    "MixtureWorkload",
    "PhasedWorkload",
    "RequestWorkload",
    "available_workloads",
    "get_workload",
    "SCIENTIFIC_WORKLOADS",
    "COMMERCIAL_WORKLOADS",
    "ALL_WORKLOADS",
    "Em3dWorkload",
    "MoldynWorkload",
    "OceanWorkload",
    "SparseSolverWorkload",
    "OLTPWorkload",
    "DB2Workload",
    "OracleWorkload",
    "JBBWorkload",
    "WebServerWorkload",
    "ApacheWorkload",
    "ZeusWorkload",
]
