"""Workload generators.

The paper evaluates three scientific applications (em3d, moldyn, ocean) and
four commercial server workloads (TPC-C on DB2 and Oracle, SPECweb99 on
Apache and Zeus).  The real software stacks cannot be run here, so each
workload is replaced by a generator that executes the same *sharing
structure* — the data-structure traversals that produce coherent read misses
— and emits a globally interleaved multi-node access trace.

The generators are calibrated (see ``tests/test_workload_properties.py`` and
EXPERIMENTS.md) so that the temporal-correlation and stream-length behaviour
of the traces matches the paper's characterisation:

* scientific workloads repeat essentially identical consumption sequences
  every iteration (near-100 % correlation, very long streams);
* commercial workloads mix migratory transaction templates (correlated) with
  irregular shared-structure churn (uncorrelated), giving ~40–65 %
  correlated consumptions and many short streams.
"""

from repro.workloads.base import (
    Workload,
    WorkloadParams,
    available_workloads,
    get_workload,
    COMMERCIAL_WORKLOADS,
    SCIENTIFIC_WORKLOADS,
    ALL_WORKLOADS,
)
from repro.workloads.em3d import Em3dWorkload
from repro.workloads.moldyn import MoldynWorkload
from repro.workloads.ocean import OceanWorkload
from repro.workloads.oltp import DB2Workload, OLTPWorkload, OracleWorkload
from repro.workloads.web import ApacheWorkload, WebServerWorkload, ZeusWorkload

__all__ = [
    "Workload",
    "WorkloadParams",
    "available_workloads",
    "get_workload",
    "SCIENTIFIC_WORKLOADS",
    "COMMERCIAL_WORKLOADS",
    "ALL_WORKLOADS",
    "Em3dWorkload",
    "MoldynWorkload",
    "OceanWorkload",
    "OLTPWorkload",
    "DB2Workload",
    "OracleWorkload",
    "WebServerWorkload",
    "ApacheWorkload",
    "ZeusWorkload",
]
