"""moldyn: molecular dynamics with neighbour interaction lists.

The CHAOS moldyn kernel ([23] in the paper) computes pairwise forces between
molecules within a cutoff radius.  The interaction (neighbour) list is
rebuilt only every several timesteps, so between rebuilds every iteration
reads the same remote molecule positions in the same order — near-perfect
temporal correlation, slightly below em3d's because the lists drift when
rebuilt (the paper measures 98 % trace coverage versus em3d's 100 %).

Workload Engine v2 expresses this as one :class:`PartitionedSweep` over the
position array (two remote readers per partition — molecules near a
partition boundary interact with both neighbouring CPUs' molecules), with
:meth:`PartitionedSweep.drift` applied every ``REBUILD_INTERVAL`` iterations
to model the list rebuilds.  Each drift point breaks the agreement between
the two compared streams exactly where the order changed, trimming a few
hits off the streams without shortening them qualitatively.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.common.chunk import PackedAccess
from repro.workloads.base import register_workload
from repro.workloads.engine import PhasedWorkload
from repro.workloads.primitives import PartitionedSweep


@register_workload("moldyn")
class MoldynWorkload(PhasedWorkload):
    """Scaled-down moldyn trace generator.

    Table 2 simulates 19 652 molecules with up to 2.56 M interactions; the
    default here keeps a few hundred position blocks per CPU (scaled by
    ``params.scale``), which preserves the rebuild-drift structure while
    keeping pure-Python runs fast.
    """

    category = "scientific"

    #: Position blocks owned by each CPU at scale = 1.0.
    BASE_BLOCKS_PER_NODE = 288
    #: Fraction of each partition read by neighbouring CPUs every iteration.
    REMOTE_FRACTION = 0.7
    #: Neighbour lists are rebuilt every this many iterations.
    REBUILD_INTERVAL = 8
    #: Fraction of each CPU's read order re-permuted at a rebuild.
    REBUILD_CHURN = 0.12
    WORK_PER_READ = 35

    def build(self) -> None:
        self._positions = PartitionedSweep(
            "positions",
            self.space,
            self.rng.fork(1),
            num_nodes=self.params.num_nodes,
            blocks_per_node=self.params.scaled(self.BASE_BLOCKS_PER_NODE, minimum=32),
            # Boundary molecules interact with both neighbouring partitions.
            reader_offsets=(1, -1),
            remote_fraction=self.REMOTE_FRACTION,
            read_work=self.WORK_PER_READ,
            write_work=20,
            local_reads_per_remote=1,
            local_read_work=20,
        )
        self._drift_rng = self.rng.fork(2)

    def iteration(self, index: int, rng) -> Iterator[List[List[PackedAccess]]]:
        if index > 0 and index % self.REBUILD_INTERVAL == 0:
            self._positions.drift(self._drift_rng, self.REBUILD_CHURN)
        # Force sweep: read remote neighbour positions (+ local positions).
        yield self._positions.read_phase(self)
        # Position update: each CPU integrates and rewrites its own molecules.
        yield self._positions.write_phase(self)
