"""moldyn: molecular dynamics with neighbour interaction lists.

The CHAOS moldyn kernel ([23] in the paper) computes pairwise forces between
molecules that are within a cutoff radius.  The interaction (neighbour) list
is rebuilt only every several timesteps, so between rebuilds every iteration
reads the same remote molecule positions in the same order — near-perfect
temporal correlation, slightly below em3d's because the lists drift when
rebuilt (the paper measures 98 % trace coverage versus em3d's 100 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.types import AccessTrace, MemoryAccess
from repro.workloads.base import Workload, WorkloadParams, register_workload


@dataclass
class _Molecule:
    """A molecule: one position block, one force block, and its neighbours."""

    position_block: int
    force_block: int
    owner: int
    neighbors: List[int]


@register_workload("moldyn")
class MoldynWorkload(Workload):
    """Scaled-down moldyn trace generator.

    Table 2 simulates 19 652 molecules with up to 2.56 M interactions; the
    default here is 2 048 molecules with 8 neighbours each (scaled by
    ``params.scale``).
    """

    category = "scientific"

    BASE_MOLECULES = 2048
    NEIGHBORS_PER_MOLECULE = 8
    #: Neighbours are drawn from molecules within this index distance —
    #: molecules are laid out along a space-filling order, so spatial
    #: proximity maps to index proximity and remote neighbours occur only
    #: near partition boundaries (as in the real kernel's spatial
    #: decomposition).
    NEIGHBOR_WINDOW = 48
    #: Neighbour lists are rebuilt every this many iterations.
    REBUILD_INTERVAL = 20
    #: Fraction of each molecule's neighbour list replaced at a rebuild.
    REBUILD_CHURN = 0.15
    WORK_PER_READ = 35

    def __init__(self, params: Optional[WorkloadParams] = None) -> None:
        super().__init__(params)
        self._molecules: List[_Molecule] = []
        self._build_molecules()

    # --------------------------------------------------------------- building
    def _build_molecules(self) -> None:
        num_cpus = self.params.num_nodes
        total = self.params.scaled(self.BASE_MOLECULES, minimum=num_cpus * 8)
        total -= total % num_cpus
        per_cpu = total // num_cpus
        positions = self.space.allocate("positions", total)
        forces = self.space.allocate("forces", total)
        rng = self.rng.fork(2)

        for index in range(total):
            owner = index // per_cpu
            neighbors = [
                self._pick_neighbor(rng, index, total)
                for _ in range(self.NEIGHBORS_PER_MOLECULE)
            ]
            self._molecules.append(
                _Molecule(
                    position_block=positions.start + index,
                    force_block=forces.start + index,
                    owner=owner,
                    neighbors=neighbors,
                )
            )
        self._positions_region = positions
        self._per_cpu = per_cpu
        self._total_molecules = total

    def _pick_neighbor(self, rng, index: int, total: int) -> int:
        """Pick a spatially nearby neighbour (within the cutoff window)."""
        offset = 0
        while offset == 0:
            offset = rng.randint(-self.NEIGHBOR_WINDOW, self.NEIGHBOR_WINDOW)
        return (index + offset) % total

    def _rebuild_lists(self, rng) -> None:
        """Replace a fraction of every molecule's neighbours (list drift)."""
        for index, molecule in enumerate(self._molecules):
            for slot in range(len(molecule.neighbors)):
                if rng.bernoulli(self.REBUILD_CHURN):
                    molecule.neighbors[slot] = self._pick_neighbor(
                        rng, index, self._total_molecules
                    )

    # -------------------------------------------------------------- generation
    def _iteration(self) -> List[List[MemoryAccess]]:
        """One force-computation sweep by every CPU over its molecules."""
        per_node: List[List[MemoryAccess]] = [[] for _ in range(self.params.num_nodes)]
        for molecule in self._molecules:
            cpu = molecule.owner
            accesses = per_node[cpu]
            accesses.append(self.read(cpu, molecule.position_block, work=20))
            for neighbor_index in molecule.neighbors:
                neighbor = self._molecules[neighbor_index]
                accesses.append(
                    self.read(cpu, neighbor.position_block, work=self.WORK_PER_READ)
                )
            accesses.append(self.write(cpu, molecule.force_block, work=20))
        return per_node

    def _position_update(self) -> List[List[MemoryAccess]]:
        """Each CPU integrates and writes its own molecules' positions."""
        per_node: List[List[MemoryAccess]] = [[] for _ in range(self.params.num_nodes)]
        for molecule in self._molecules:
            cpu = molecule.owner
            per_node[cpu].append(self.read(cpu, molecule.force_block, work=20))
            per_node[cpu].append(self.write(cpu, molecule.position_block, work=20))
        return per_node

    def generate(self) -> AccessTrace:
        trace = self._new_trace()
        rng = self.rng.fork(3)
        iteration = 0
        while len(trace) < self.params.target_accesses:
            if iteration > 0 and iteration % self.REBUILD_INTERVAL == 0:
                self._rebuild_lists(rng)
            self.interleave_round(self._iteration(), trace)
            self.interleave_round(self._position_update(), trace)
            iteration += 1
        return trace
