"""Setuptools shim so editable installs work without the ``wheel`` package.

The environment used for reproduction has setuptools 65 but no ``wheel``
distribution, which breaks PEP 517 editable installs; keeping a ``setup.py``
lets ``pip install -e .`` fall back to the legacy develop path.
"""

from setuptools import setup

setup()
